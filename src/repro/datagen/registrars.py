"""Registrar profiles with the market structure the paper reports.

Shares come from Table 5 (all-time and 2014 com registrations), the
registrant-country mixes of the four featured registrars from Figure 5, the
privacy-service associations from Tables 6-7, and the rate-limiting
behaviour from Section 4.1 (including Network Solutions' strict limit that
cost the authors their thick records, footnote 11).

Each registrar renders thick records with one *schema family*; families
with ``drift=True`` have a second version of their template, modeling the
"one large registrar modifying their schema significantly during the four
months of WHOIS measurements" (Section 2.3, footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RateLimitSpec:
    """Per-source-IP query budget of a WHOIS server (Section 4.1)."""

    limit: int  # queries allowed per window
    window: float  # seconds
    penalty: float  # seconds of silence after tripping the limit
    failure_mode: str = "empty"  # "empty" | "error" | "drop"


@dataclass(frozen=True)
class RegistrarProfile:
    """One com registrar: market share, schema, and operational behaviour."""

    name: str
    iana_id: int
    whois_server: str
    url: str
    share_alltime: float  # fraction of all com domains (Table 5 left)
    share_2014: float  # fraction of 2014 registrations (Table 5 right)
    schema_family: str
    country_mix: dict[str, float] | None = None  # None -> year profile
    mix_blend: float = 1.0  # weight on country_mix vs the year profile
    privacy_services: tuple[tuple[str, float], ...] = ()
    privacy_multiplier: float = 1.0  # relative appetite for privacy protection
    drift: bool = False
    founded: int = 1995  # no registrations before this year
    rate_limit: RateLimitSpec = field(
        default_factory=lambda: RateLimitSpec(limit=60, window=10.0, penalty=30.0)
    )


_GODADDY_MIX = {
    "US": 0.62, "GB": 0.05, "CA": 0.05, "IN": 0.03, "CN": 0.025,
    "AU": 0.025, "DE": 0.02, "FR": 0.02, "ES": 0.02, "TR": 0.02,
    "JP": 0.005, "??": 0.03, "OTHER": 0.085,
}

REGISTRARS: tuple[RegistrarProfile, ...] = (
    RegistrarProfile(
        name="GoDaddy.com, LLC",
        iana_id=146,
        whois_server="whois.godaddy.com",
        url="http://www.godaddy.com",
        share_alltime=0.342,
        share_2014=0.344,
        schema_family="godaddy",
        founded=1999,
        country_mix=_GODADDY_MIX,
        mix_blend=0.8,
        privacy_services=(("Domains By Proxy, LLC", 1.0),),
        privacy_multiplier=1.0,
        drift=True,  # the large registrar whose schema changed mid-crawl
    ),
    RegistrarProfile(
        name="eNom, Inc.",
        iana_id=48,
        whois_server="whois.enom.com",
        url="http://www.enom.com",
        share_alltime=0.087,
        share_2014=0.077,
        schema_family="enom",
        founded=1997,
        # Figure 5: top-3 registrant countries US, CA, GB.
        country_mix={
            "US": 0.55, "CA": 0.09, "GB": 0.08, "DE": 0.02, "FR": 0.02,
            "AU": 0.02, "IN": 0.02, "JP": 0.01, "??": 0.03, "OTHER": 0.16,
        },
        privacy_services=(
            ("WhoisGuard, Inc.", 0.55),
            ("Whois Privacy Protection Service, Inc.", 0.45),
        ),
        privacy_multiplier=1.5,
    ),
    RegistrarProfile(
        name="Network Solutions, LLC",
        iana_id=2,
        whois_server="whois.networksolutions.com",
        url="http://networksolutions.com",
        share_alltime=0.050,
        share_2014=0.043,
        schema_family="netsol",
        founded=1993,
        country_mix={
            "US": 0.75, "CA": 0.05, "GB": 0.04, "??": 0.04, "OTHER": 0.12,
        },
        privacy_services=(("Perfect Privacy, LLC", 1.0),),
        privacy_multiplier=0.4,
        # Pathologically strict: ~1 query/minute per source with long
        # penalties, so crawling its thick records is hopeless at scale and
        # only thin records survive (footnote 11).
        rate_limit=RateLimitSpec(limit=10, window=600.0, penalty=1800.0,
                                 failure_mode="error"),
    ),
    RegistrarProfile(
        name="1&1 Internet AG",
        iana_id=83,
        whois_server="whois.1and1.com",
        url="http://1and1.com",
        share_alltime=0.030,
        share_2014=0.021,
        schema_family="oneandone",
        founded=1998,
        country_mix={
            "DE": 0.45, "US": 0.25, "GB": 0.08, "FR": 0.05, "ES": 0.03,
            "??": 0.03, "OTHER": 0.11,
        },
        privacy_services=(("1&1 Internet Inc.", 1.0),),
        privacy_multiplier=0.7,
    ),
    RegistrarProfile(
        name="Wild West Domains, LLC",
        iana_id=440,
        whois_server="whois.wildwestdomains.com",
        url="http://www.wildwestdomains.com",
        share_alltime=0.026,
        share_2014=0.024,
        schema_family="godaddy",  # GoDaddy reseller platform, same schema
        founded=2002,
        country_mix=_GODADDY_MIX,
        mix_blend=0.8,
        privacy_services=(("Domains By Proxy, LLC", 1.0),),
        privacy_multiplier=1.1,
        drift=True,
    ),
    RegistrarProfile(
        name="HiChina Zhicheng Technology Ltd.",
        iana_id=420,
        whois_server="grs-whois.hichina.com",
        url="http://www.net.cn",
        share_alltime=0.021,
        share_2014=0.037,
        schema_family="hichina",
        founded=2002,
        # Figure 5: CN dominant, then records lacking country ("[]"), HK, VN.
        country_mix={
            "CN": 0.82, "??": 0.07, "HK": 0.04, "VN": 0.03, "OTHER": 0.04,
        },
        privacy_services=(("Aliyun Computing Co., Ltd", 1.0),),
        privacy_multiplier=1.3,
    ),
    RegistrarProfile(
        name="PDR Ltd. d/b/a PublicDomainRegistry.com",
        iana_id=303,
        whois_server="whois.publicdomainregistry.com",
        url="http://www.publicdomainregistry.com",
        share_alltime=0.021,
        share_2014=0.032,
        schema_family="pdr",
        founded=2002,
        country_mix={
            "IN": 0.40, "US": 0.20, "CN": 0.05, "TR": 0.06, "VN": 0.03,
            "??": 0.04, "OTHER": 0.22,
        },
        privacy_services=(("PrivacyProtect.org", 1.0),),
        privacy_multiplier=1.2,
    ),
    RegistrarProfile(
        name="Register.com, Inc.",
        iana_id=9,
        whois_server="whois.register.com",
        url="http://www.register.com",
        share_alltime=0.020,
        share_2014=0.021,
        schema_family="dotleader",
        founded=1994,
        country_mix={"US": 0.70, "CA": 0.06, "GB": 0.04, "??": 0.03,
                     "OTHER": 0.17},
        privacy_services=(("Perfect Privacy, LLC", 1.0),),
        privacy_multiplier=1.2,
    ),
    RegistrarProfile(
        name="FastDomain Inc.",
        iana_id=1154,
        whois_server="whois.fastdomain.com",
        url="http://www.fastdomain.com",
        share_alltime=0.019,
        share_2014=0.012,
        schema_family="fastdomain",
        founded=2004,
        country_mix={"US": 0.68, "CA": 0.05, "GB": 0.04, "IN": 0.03,
                     "??": 0.03, "OTHER": 0.17},
        privacy_services=(("FBO REGISTRANT", 1.0),),
        privacy_multiplier=1.4,
    ),
    RegistrarProfile(
        name="GMO Internet, Inc. d/b/a Onamae.com",
        iana_id=49,
        whois_server="whois.discount-domain.com",
        url="http://www.onamae.com",
        share_alltime=0.018,
        share_2014=0.030,
        schema_family="gmo",
        founded=1999,
        # Figure 5: JP dominant, then US.
        country_mix={"JP": 0.85, "US": 0.05, "??": 0.03, "OTHER": 0.07},
        privacy_services=(
            ("Whois Privacy Protection Service by onamae.com", 0.6),
            ("MuuMuuDomain", 0.4),
        ),
        privacy_multiplier=2.2,
    ),
    RegistrarProfile(
        name="Xin Net Technology Corporation",
        iana_id=120,
        whois_server="whois.paycenter.com.cn",
        url="http://www.xinnet.com",
        share_alltime=0.012,
        share_2014=0.033,
        schema_family="xinnet",
        founded=2000,
        country_mix={"CN": 0.85, "??": 0.05, "HK": 0.03, "OTHER": 0.07},
        privacy_multiplier=0.5,
    ),
    RegistrarProfile(
        name="Tucows Domains Inc.",
        iana_id=69,
        whois_server="whois.tucows.com",
        url="http://www.tucows.com",
        share_alltime=0.015,
        share_2014=0.010,
        schema_family="tucows",
        founded=1995,
        country_mix={"US": 0.50, "CA": 0.15, "GB": 0.08, "DE": 0.04,
                     "??": 0.03, "OTHER": 0.20},
        privacy_services=(("Contact Privacy Inc.", 1.0),),
        privacy_multiplier=0.9,
    ),
    RegistrarProfile(
        name="Melbourne IT Ltd",
        iana_id=13,
        whois_server="whois.melbourneit.com",
        url="http://www.melbourneit.com.au",
        share_alltime=0.010,
        share_2014=0.005,
        schema_family="melbourneit",
        founded=1996,
        # Figure 5: US customers dominate, then AU, then JP.
        country_mix={"US": 0.45, "AU": 0.28, "JP": 0.12, "GB": 0.04,
                     "??": 0.02, "OTHER": 0.09},
        privacy_multiplier=0.3,
    ),
    RegistrarProfile(
        name="Moniker Online Services LLC",
        iana_id=228,
        whois_server="whois.moniker.com",
        url="http://www.moniker.com",
        share_alltime=0.008,
        share_2014=0.005,
        schema_family="moniker",
        founded=1999,
        country_mix={"US": 0.60, "??": 0.04, "OTHER": 0.36},
        privacy_services=(("Moniker Privacy Services", 1.0),),
        privacy_multiplier=1.6,
    ),
    RegistrarProfile(
        name="DreamHost, LLC",
        iana_id=431,
        whois_server="whois.dreamhost.com",
        url="http://www.dreamhost.com",
        share_alltime=0.007,
        share_2014=0.007,
        schema_family="dreamhost",
        founded=2003,
        country_mix={"US": 0.70, "CA": 0.05, "??": 0.03, "OTHER": 0.22},
        privacy_services=(("Happy DreamHost", 1.0),),
        privacy_multiplier=2.8,
    ),
    RegistrarProfile(
        name="Name.com, Inc.",
        iana_id=625,
        whois_server="whois.name.com",
        url="http://www.name.com",
        share_alltime=0.006,
        share_2014=0.007,
        schema_family="namecom",
        founded=2003,
        country_mix={"US": 0.62, "CA": 0.06, "GB": 0.05, "??": 0.03,
                     "OTHER": 0.24},
        privacy_services=(("Whois Agent (name.com)", 1.0),),
        privacy_multiplier=1.0,
    ),
    RegistrarProfile(
        name="Bizcn.com, Inc.",
        iana_id=471,
        whois_server="whois.bizcn.com",
        url="http://www.bizcn.com",
        share_alltime=0.004,
        share_2014=0.006,
        schema_family="bizcn",
        founded=2002,
        country_mix={"CN": 0.80, "??": 0.06, "HK": 0.04, "OTHER": 0.10},
        privacy_multiplier=0.6,
    ),
    RegistrarProfile(
        name="NameCheap, Inc.",
        iana_id=1068,
        whois_server="whois.namecheap.com",
        url="http://www.namecheap.com",
        share_alltime=0.012,
        share_2014=0.018,
        schema_family="namecheap",
        founded=2001,
        country_mix={"US": 0.52, "GB": 0.06, "CA": 0.05, "IN": 0.04,
                     "TR": 0.03, "??": 0.03, "OTHER": 0.27},
        privacy_services=(("WhoisGuard, Inc.", 1.0),),
        privacy_multiplier=2.0,
    ),
    RegistrarProfile(
        name="OVH SAS",
        iana_id=433,
        whois_server="whois.ovh.com",
        url="http://www.ovh.com",
        share_alltime=0.008,
        share_2014=0.010,
        schema_family="ovh",
        founded=2004,
        country_mix={"FR": 0.62, "ES": 0.05, "DE": 0.04, "GB": 0.03,
                     "??": 0.03, "OTHER": 0.23},
        privacy_multiplier=0.8,
    ),
    RegistrarProfile(
        name="Gandi SAS",
        iana_id=81,
        whois_server="whois.gandi.net",
        url="http://www.gandi.net",
        share_alltime=0.006,
        share_2014=0.007,
        schema_family="gandi",
        founded=2000,
        country_mix={"FR": 0.55, "US": 0.10, "GB": 0.05, "??": 0.03,
                     "OTHER": 0.27},
        privacy_multiplier=0.7,
    ),
    RegistrarProfile(
        name="Key-Systems GmbH",
        iana_id=269,
        whois_server="whois.rrpproxy.net",
        url="http://www.key-systems.net",
        share_alltime=0.007,
        share_2014=0.007,
        schema_family="rrpproxy",
        founded=2002,
        country_mix={"DE": 0.48, "US": 0.12, "GB": 0.06, "??": 0.04,
                     "OTHER": 0.30},
        privacy_multiplier=0.8,
    ),
    RegistrarProfile(
        name="united-domains AG",
        iana_id=1408,
        whois_server="whois.united-domains.de",
        url="http://www.united-domains.de",
        share_alltime=0.004,
        share_2014=0.004,
        schema_family="generic_a",
        founded=2000,
        country_mix={"DE": 0.70, "CH": 0.06, "??": 0.03, "OTHER": 0.21},
        privacy_multiplier=0.4,
    ),
    RegistrarProfile(
        name="eName Technology Co., Ltd.",
        iana_id=1331,
        whois_server="whois.ename.com",
        url="http://www.ename.net",
        share_alltime=0.005,
        share_2014=0.012,
        schema_family="generic_b",
        founded=2005,
        country_mix={"CN": 0.88, "??": 0.04, "OTHER": 0.08},
        privacy_multiplier=0.5,
    ),
    RegistrarProfile(
        name="Launchpad.com Inc.",
        iana_id=955,
        whois_server="whois.launchpad.com",
        url="http://www.launchpad.com",
        share_alltime=0.005,
        share_2014=0.005,
        schema_family="generic_c",
        founded=2004,
        country_mix={"US": 0.58, "CA": 0.08, "??": 0.03, "OTHER": 0.31},
        privacy_multiplier=1.2,
    ),
    RegistrarProfile(
        name="Dynadot, LLC",
        iana_id=472,
        whois_server="whois.dynadot.com",
        url="http://www.dynadot.com",
        share_alltime=0.004,
        share_2014=0.006,
        schema_family="generic_a",
        founded=2002,
        country_mix={"US": 0.50, "CN": 0.12, "??": 0.03, "OTHER": 0.35},
        privacy_multiplier=1.5,
    ),
    RegistrarProfile(
        name="Hover (Tucows)",
        iana_id=1600,
        whois_server="whois.hover.com",
        url="http://www.hover.com",
        share_alltime=0.003,
        share_2014=0.003,
        schema_family="tucows",
        founded=2008,
        country_mix={"US": 0.55, "CA": 0.20, "??": 0.02, "OTHER": 0.23},
        privacy_multiplier=0.9,
    ),
    RegistrarProfile(
        name="Todaynic.com, Inc.",
        iana_id=697,
        whois_server="whois.todaynic.com",
        url="http://www.now.cn",
        share_alltime=0.003,
        share_2014=0.005,
        schema_family="generic_b",
        founded=2000,
        country_mix={"CN": 0.84, "??": 0.05, "OTHER": 0.11},
        privacy_multiplier=0.5,
    ),
    RegistrarProfile(
        name="Vitalwerks Internet Solutions, LLC",
        iana_id=1327,
        whois_server="whois.no-ip.com",
        url="http://www.noip.com",
        share_alltime=0.002,
        share_2014=0.002,
        schema_family="odd",
        founded=2000,
        country_mix={"US": 0.55, "??": 0.05, "OTHER": 0.40},
        privacy_multiplier=0.8,
    ),
)

_BY_NAME = {profile.name: profile for profile in REGISTRARS}


def registrar_by_name(name: str) -> RegistrarProfile:
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(f"unknown registrar {name!r}") from exc


def registrar_shares(year: int) -> dict[str, float]:
    """Market shares for domains created in ``year``.

    Linear blend between the all-time and 2014 columns of Table 5 (the
    all-time column stands in for the "early" regime).  Registrars that did
    not exist yet in ``year`` get zero share; their mass flows to Network
    Solutions and Register.com, the registration monopoly/duopoly of the
    1990s (Section 2.1).  The residual "(Other)" mass is spread over a
    synthetic tail of small registrars by :mod:`repro.datagen.corpus`.
    """
    t = (min(max(year, 2000), 2014) - 2000) / 14.0
    shares = {}
    removed = 0.0
    for profile in REGISTRARS:
        share = (1 - t) * profile.share_alltime + t * profile.share_2014
        if year < profile.founded:
            removed += share
            share = 0.0
        shares[profile.name] = share
    if removed > 0.0:
        shares["Network Solutions, LLC"] += 0.7 * removed
        shares["Register.com, Inc."] += 0.3 * removed
    total = sum(shares.values())
    if total > 1.0:
        return {name: share / total for name, share in shares.items()}
    return shares


TAIL_REGISTRAR_COUNT = 40  # synthetic long tail standing in for ~1400 registrars


def tail_registrar_profile(i: int) -> RegistrarProfile:
    """The ``i``-th synthetic tail registrar (generic schema, tiny share)."""
    if not 0 <= i < TAIL_REGISTRAR_COUNT:
        raise ValueError(f"tail registrar index {i} out of range")
    family = ("generic_a", "generic_b", "generic_c", "odd")[i % 4]
    return RegistrarProfile(
        name=f"Domain Registrar {i + 1:02d}, Inc.",
        iana_id=2000 + i,
        whois_server=f"whois.registrar{i + 1:02d}.com",
        url=f"http://www.registrar{i + 1:02d}.com",
        share_alltime=0.0,
        share_2014=0.0,
        schema_family=family,
        country_mix=None,
        privacy_multiplier=1.0 if i % 3 else 1.8,
        privacy_services=((f"Private Registration {i + 1:02d}", 1.0),)
        if i % 3 == 0
        else (),
    )
