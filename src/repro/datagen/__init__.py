"""Synthetic WHOIS data substrate.

The paper's evaluation rests on two corpora we cannot obtain offline: 86K
hand/rule-labeled com records and a 102M-record crawl.  This package builds
the closest synthetic equivalent: registrar profiles with the market shares
the paper reports, ~20 distinct thick-record schema families rendered with
exact line-level ground truth, Verisign-style thin records, twelve new-TLD
templates (Table 2), a zone file, and a synthetic DBL blacklist.  Every
generator is seeded and deterministic.
"""

from repro.datagen.countries import COUNTRIES, Country, country_by_code
from repro.datagen.entities import Contact, EntityGenerator
from repro.datagen.registration import Registration
from repro.datagen.registrars import (
    REGISTRARS,
    RegistrarProfile,
    registrar_by_name,
)
from repro.datagen.corpus import CorpusConfig, CorpusGenerator
from repro.datagen.blacklist import BlacklistGenerator
from repro.datagen.zone import ZoneFile

__all__ = [
    "BlacklistGenerator",
    "COUNTRIES",
    "Contact",
    "CorpusConfig",
    "CorpusGenerator",
    "Country",
    "EntityGenerator",
    "REGISTRARS",
    "Registration",
    "RegistrarProfile",
    "ZoneFile",
    "country_by_code",
    "registrar_by_name",
]
