"""Verisign-style thin registry records for com (Section 2.2).

The thin record carries only the registrar identity, dates, status, and
name servers; crucially it names the registrar's WHOIS server, which the
crawler must extract to fetch the thick record (Section 4.1).
"""

from __future__ import annotations

import re

from repro.datagen.registration import Registration
from repro.datagen.schemas.base import fmt_date

_HEADER = (
    "Whois Server Version 2.0",
    "",
    "Domain names in the .com and .net domains can now be registered",
    "with many different competing registrars. Go to http://www.internic.net",
    "for detailed information.",
    "",
)

_FOOTER = (
    "",
    ">>> Last update of whois database: see above <<<",
    "",
    "NOTICE: The expiration date displayed in this record is the date the",
    "registrar's sponsorship of the domain name registration in the registry is",
    "currently set to expire.",
    "",
    "The Registry database contains ONLY .COM, .NET, .EDU domains and",
    "Registrars.",
)


def render_thin(registration: Registration) -> str:
    """The registry's (thin) response for one registered com domain."""
    reg = registration
    lines = list(_HEADER)
    lines.append(f"   Domain Name: {reg.domain.upper()}")
    lines.append(f"   Registrar: {reg.registrar_name.upper()}")
    lines.append(f"   Sponsoring Registrar IANA ID: {reg.registrar_iana_id}")
    lines.append(f"   Whois Server: {reg.registrar_whois_server}")
    lines.append(f"   Referral URL: {reg.registrar_url}")
    for ns in reg.name_servers:
        lines.append(f"   Name Server: {ns.upper()}")
    for status in reg.statuses:
        lines.append(f"   Status: {status}")
    lines.append(f"   Updated Date: {fmt_date(reg.updated, 'dmy_abbr').lower()}")
    lines.append(f"   Creation Date: {fmt_date(reg.created, 'dmy_abbr').lower()}")
    lines.append(f"   Expiration Date: {fmt_date(reg.expires, 'dmy_abbr').lower()}")
    lines.extend(_FOOTER)
    return "\n".join(lines)


NO_MATCH = "No match for domain."

_WHOIS_SERVER = re.compile(r"Whois Server:\s*(\S+)", re.IGNORECASE)
_REGISTRAR = re.compile(r"^\s*Registrar:\s*(.+?)\s*$", re.IGNORECASE | re.MULTILINE)


def extract_referral(thin_text: str) -> str | None:
    """The registrar WHOIS server named by a thin record, if any."""
    match = _WHOIS_SERVER.search(thin_text)
    return match.group(1) if match else None


def extract_registrar(thin_text: str) -> str | None:
    match = _REGISTRAR.search(thin_text)
    return match.group(1) if match else None
