"""New-gTLD thick-record templates for the Table 2 generalization study.

Each of the twelve TLDs the paper samples (aero, asia, biz, coop, info,
mobi, name, org, pro, travel, us, xxx) is operated by a single thick
registry with one consistent template, so "it is enough to sample one WHOIS
record from each TLD".  The templates below range from near-ICANN formats
(info, org -- both parsers handle them) through moderately novel vocabulary
(asia's CED fields, us address lines, travel's tab separators) to the
genuinely weird dotCoop layout, mirroring the difficulty gradient of the
paper's error counts.
"""

from __future__ import annotations

import random
import zlib

from repro.datagen.entities import Contact
from repro.datagen.registration import Registration
from repro.datagen.schemas.base import Row, blank, build_record, fmt_date
from repro.whois.records import LabeledRecord

#: the example domain the paper lists for each TLD
EXAMPLE_DOMAINS: dict[str, str] = {
    "aero": "bluemed.aero",
    "asia": "islameyat.asia",
    "biz": "aktivjob.biz",
    "coop": "emheartcu.coop",
    "info": "travelmarche.info",
    "mobi": "amxich.mobi",
    "name": "emrich.name",
    "org": "fekrtna.org",
    "pro": "olbrich.pro",
    "travel": "tabacon.travel",
    "us": "vc4.us",
    "xxx": "celly.xxx",
}

#: registry operator shown in each TLD's records
REGISTRY_OPERATORS: dict[str, str] = {
    "aero": "SITA SC (Afilias platform)",
    "asia": "DotAsia Organisation",
    "biz": "Neustar, Inc.",
    "coop": "DotCooperation LLC",
    "info": "Afilias Limited",
    "mobi": "Afilias Technologies (dotMobi)",
    "name": "Verisign Information Services",
    "org": "Public Interest Registry",
    "pro": "RegistryPro Ltd.",
    "travel": "Tralliance Registry Management",
    "us": "Neustar, Inc.",
    "xxx": "ICM Registry LLC",
}

def _stable_id(domain: str) -> int:
    """Registry object id derived from the domain, stable across processes
    (``hash()`` varies with PYTHONHASHSEED)."""
    return zlib.crc32(domain.encode()) % 10**8


_LEGAL = (
    "Access to the whois service is rate limited. Query results are provided",
    "for informational purposes only and may be used solely to obtain",
    "information about a domain name registration record. By submitting a",
    "query you agree not to use the data to allow or enable high volume,",
    "automated processes, or to support unsolicited commercial advertising.",
    "The registry reserves the right to modify these terms at any time.",
)


def _afilias_contact(
    prefix: str,
    contact: Contact,
    block: str,
    *,
    sub_labels: bool,
    street_title: str = "Street1",
) -> list[Row]:
    """Afilias registry contact stanza (``Registrant Street1:`` etc.)."""

    def sub(name: str) -> str | None:
        return name if sub_labels else None

    rows = [
        Row(f"{prefix} ID:{contact.handle}", block, sub("id")),
        Row(f"{prefix} Name:{contact.name}", block, sub("name")),
        Row(f"{prefix} Organization:{contact.org}", block, sub("org")),
        Row(f"{prefix} {street_title}:{contact.street}", block, sub("street")),
        Row(f"{prefix} City:{contact.city}", block, sub("city")),
        Row(f"{prefix} State/Province:{contact.state}", block, sub("state")),
        Row(f"{prefix} Postal Code:{contact.postcode}", block, sub("postcode")),
        Row(f"{prefix} Country:{contact.country_code or 'US'}", block, sub("country")),
        Row(f"{prefix} Phone:{contact.phone}", block, sub("phone")),
        Row(f"{prefix} FAX:{contact.fax or contact.phone}", block, sub("fax")),
        Row(f"{prefix} Email:{contact.email}", block, sub("email")),
    ]
    return rows


def _legal_rows() -> list[Row]:
    return [Row(text, "null") for text in _LEGAL]


def _afilias_style(
    reg: Registration, *, tld: str, extra_domain_rows: list[Row] | None = None,
    street_title: str = "Street1",
) -> LabeledRecord:
    rows: list[Row] = [
        Row(f"Domain ID:D{_stable_id(reg.domain)}-LR{tld.upper()}", "domain"),
        Row(f"Domain Name:{reg.domain.upper()}", "domain"),
        Row(f"Created On:{fmt_date(reg.created, 'dmy_abbr')}", "date"),
        Row(f"Last Updated On:{fmt_date(reg.updated, 'dmy_abbr')}", "date"),
        Row(f"Expiration Date:{fmt_date(reg.expires, 'dmy_abbr')}", "date"),
        Row(f"Sponsoring Registrar:{REGISTRY_OPERATORS[tld]}", "registrar"),
    ]
    # Registry-specific stanzas sit between the registrar and status lines,
    # where their novel titles give context-inheriting rules no help.
    if extra_domain_rows:
        rows.extend(extra_domain_rows)
    rows.extend(Row(f"Status:{s.upper()}", "domain") for s in reg.statuses)
    rows.extend(
        _afilias_contact("Registrant", reg.registrant, "registrant",
                         sub_labels=True, street_title=street_title)
    )
    rows.extend(
        _afilias_contact("Admin", reg.admin, "other", sub_labels=False,
                         street_title=street_title)
    )
    rows.extend(
        _afilias_contact("Tech", reg.tech, "other", sub_labels=False,
                         street_title=street_title)
    )
    if reg.billing is not None:
        rows.extend(
            _afilias_contact("Billing", reg.billing, "other", sub_labels=False,
                             street_title=street_title)
        )
    rows.extend(
        Row(f"Name Server:{ns.upper()}", "domain") for ns in reg.name_servers
    )
    rows.append(Row(f"DNSSEC:{reg.dnssec}", "domain"))
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family=f"tld_{tld}", tld=tld)


# ----------------------------------------------------------------------
# Per-TLD renderers
# ----------------------------------------------------------------------


def render_aero(reg: Registration, rng: random.Random) -> LabeledRecord:
    """SITA aero: Afilias layout plus aviation-community lines whose titles
    (Eligibility, Validity) fall outside the com vocabulary -- the source
    of the few errors both parsers make here (4/99 vs 2/99 in Table 2)."""
    extra = [
        Row("Aviation Community Eligibility Verified", "domain"),
        Row(f"Eligibility Validity Horizon {fmt_date(reg.expires, 'iso')}",
            "date"),
    ]
    return _afilias_style(reg, tld="aero", extra_domain_rows=extra)


def render_asia(reg: Registration, rng: random.Random) -> LabeledRecord:
    """DotAsia: a ``Domain Dates`` stanza with unusual verbs (Commenced,
    Lapses) plus the Charter Eligibility Declaration (CED) block whose
    vocabulary exists nowhere in com."""
    contact = reg.registrant
    rows: list[Row] = [
        Row(f"Domain ID:D{_stable_id(reg.domain)}-ASIA", "domain"),
        Row(f"Domain Name:{reg.domain.upper()}", "domain"),
        Row("Domain Dates:", "date"),
        Row(f"   Commenced On {fmt_date(reg.created, 'dmy_abbr')}", "date"),
        Row(f"   Amended On {fmt_date(reg.updated, 'dmy_abbr')}", "date"),
        Row(f"   Lapses On {fmt_date(reg.expires, 'dmy_abbr')}", "date"),
        Row(f"Sponsoring Registrar:{REGISTRY_OPERATORS['asia']}", "registrar"),
    ]
    rows.extend(Row(f"Domain Status:{s.upper()}", "domain") for s in reg.statuses)
    rows.extend(
        _afilias_contact("Registrant", contact, "registrant", sub_labels=True)
    )
    # The CED block is unique to .asia; its vocabulary exists nowhere in com.
    rows.append(Row(f"Registrant CED ID:{contact.handle}", "registrant", "id"))
    rows.append(
        Row(f"Registrant CED CC Locality:{contact.country_code or 'CN'}",
            "registrant", "country")
    )
    rows.append(
        Row("Registrant CED Type:naturalPerson", "registrant", "other")
    )
    rows.append(
        Row("Registrant CED Form of Legal Entity:Other", "registrant", "other")
    )
    rows.extend(_afilias_contact("Admin", reg.admin, "other", sub_labels=False))
    rows.extend(_afilias_contact("Tech", reg.tech, "other", sub_labels=False))
    rows.extend(
        Row(f"Nameservers:{ns.upper()}", "domain") for ns in reg.name_servers
    )
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_asia", tld="asia")


def render_biz(reg: Registration, rng: random.Random) -> LabeledRecord:
    """Neustar biz: the us column layout (no separators) with numbered
    address lines -- 36/82 rule-based errors in Table 2."""
    contact = reg.registrant

    def kv(title: str, value: str, block: str, sub: str | None = None) -> Row:
        return Row(f"{title:<45}{value}", block, sub)

    rows: list[Row] = [
        kv("Domain Name", reg.domain.upper(), "domain"),
        kv("Domain ID", f"D{rng.randint(10**6, 10**7)}-BIZ", "domain"),
        kv("Sponsoring Registrar", REGISTRY_OPERATORS["biz"], "registrar"),
        kv("Domain Status", reg.statuses[0], "domain"),
        kv("Registrant ID", contact.handle, "registrant", "id"),
        kv("Registrant Name", contact.name, "registrant", "name"),
        kv("Registrant Organization", contact.org, "registrant", "org"),
        kv("Registrant Address1", contact.street, "registrant", "street"),
        kv("Registrant City", contact.city, "registrant", "city"),
        kv("Registrant State/Province", contact.state, "registrant", "state"),
        kv("Registrant Postal Code", contact.postcode, "registrant",
           "postcode"),
        kv("Registrant Country", contact.country_display or "United States",
           "registrant", "country"),
        kv("Registrant Country Code", contact.country_code or "US",
           "registrant", "country"),
        kv("Registrant Phone Number", contact.phone, "registrant", "phone"),
        kv("Registrant Email", contact.email, "registrant", "email"),
    ]
    for role, c in (("Administrative Contact", reg.admin),
                    ("Technical Contact", reg.tech)):
        rows.append(kv(f"{role} ID", c.handle, "other"))
        rows.append(kv(f"{role} Name", c.name, "other"))
        rows.append(kv(f"{role} Email", c.email, "other"))
        rows.append(kv(f"{role} Phone Number", c.phone, "other"))
    rows.extend(
        kv("Name Server", ns.upper(), "domain") for ns in reg.name_servers
    )
    rows.append(kv("Domain Registration Date",
                   fmt_date(reg.created, "dmy_abbr"), "date"))
    rows.append(kv("Domain Expiration Date",
                   fmt_date(reg.expires, "dmy_abbr"), "date"))
    rows.append(kv("Domain Last Updated Date",
                   fmt_date(reg.updated, "dmy_abbr"), "date"))
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_biz", tld="biz")


def render_coop(reg: Registration, rng: random.Random) -> LabeledRecord:
    """dotCoop: contact *type* appears as a value, not a title -- the layout
    that defeats title-keyed rules (the paper's rule-based parser mislabels
    91 of 127 lines here)."""
    rows: list[Row] = [
        Row("%% dotCoop WHOIS server", "null"),
        Row("%% The .coop registry is operated by DotCooperation LLC", "null"),
        blank(),
        Row(f"Domain: {reg.domain}", "domain"),
        Row(f"Verification Status: cooperative verified", "domain"),
        Row(f"Registered: {fmt_date(reg.created, 'iso')}", "date"),
        Row(f"Renewal: {fmt_date(reg.expires, 'iso')}", "date"),
        Row(f"Maintained By: {REGISTRY_OPERATORS['coop']}", "registrar"),
        blank(),
    ]

    def contact_stanza(kind: str, contact: Contact, block: str,
                       sub_labels: bool) -> list[Row]:
        def sub(name: str) -> str | None:
            return name if sub_labels else None

        stanza = [
            Row("Contact", block, sub("other")),
            Row(f"   Type           {kind}", block, sub("other")),
            Row(f"   Handle         {contact.handle}", block, sub("id")),
            Row(f"   Individual     {contact.name}", block, sub("name")),
            Row(f"   Cooperative    {contact.org}", block, sub("org")),
            Row(f"   Location       {contact.street}", block, sub("street")),
            Row(f"                  {contact.city} {contact.state}", block,
                sub("city")),
            Row(f"                  {contact.postcode}", block, sub("postcode")),
            Row(f"                  {contact.country_display or 'United States'}",
                block, sub("country")),
            Row(f"   Voice          {contact.phone}", block, sub("phone")),
            Row(f"   Mail           {contact.email}", block, sub("email")),
        ]
        stanza.append(blank())
        return stanza

    rows.extend(contact_stanza("registrant", reg.registrant, "registrant", True))
    rows.extend(contact_stanza("admin", reg.admin, "other", False))
    rows.extend(contact_stanza("tech", reg.tech, "other", False))
    if reg.billing is not None:
        rows.extend(contact_stanza("billing", reg.billing, "other", False))
    rows.append(Row("Hosts", "domain"))
    rows.extend(Row(f"   {ns}", "domain") for ns in reg.name_servers)
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_coop", tld="coop")


def render_info(reg: Registration, rng: random.Random) -> LabeledRecord:
    """Afilias info: essentially the ICANN standard -- both parser types
    handle it (0 errors in Table 2)."""
    contact = reg.registrant
    rows: list[Row] = [
        Row(f"Domain Name: {reg.domain.upper()}", "domain"),
        Row(f"Registry Domain ID: D{rng.randint(10**7, 10**8)}-LRMS", "domain"),
        Row(f"Registrar: {REGISTRY_OPERATORS['info']}", "registrar"),
        Row(f"Registrar IANA ID: 1", "registrar"),
        Row(f"Updated Date: {fmt_date(reg.updated, 'iso_time')}", "date"),
        Row(f"Creation Date: {fmt_date(reg.created, 'iso_time')}", "date"),
        Row(f"Registry Expiry Date: {fmt_date(reg.expires, 'iso_time')}", "date"),
        Row(f"Domain Status: {reg.statuses[0]}", "domain"),
        Row(f"Registrant Name: {contact.name}", "registrant", "name"),
        Row(f"Registrant Organization: {contact.org}", "registrant", "org"),
        Row(f"Registrant Street: {contact.street}", "registrant", "street"),
        Row(f"Registrant City: {contact.city}", "registrant", "city"),
        Row(f"Registrant State/Province: {contact.state}", "registrant", "state"),
        Row(f"Registrant Postal Code: {contact.postcode}", "registrant",
            "postcode"),
        Row(f"Registrant Country: {contact.country_display or 'United States'}",
            "registrant", "country"),
        Row(f"Registrant Phone: {contact.phone}", "registrant", "phone"),
        Row(f"Registrant Email: {contact.email}", "registrant", "email"),
        Row(f"Admin Name: {reg.admin.name}", "other"),
        Row(f"Admin Email: {reg.admin.email}", "other"),
        Row(f"Tech Name: {reg.tech.name}", "other"),
        Row(f"Tech Email: {reg.tech.email}", "other"),
    ]
    rows.extend(
        Row(f"Name Server: {ns.upper()}", "domain") for ns in reg.name_servers
    )
    rows.append(Row(f"DNSSEC: {reg.dnssec}", "domain"))
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_info", tld="info")


def render_mobi(reg: Registration, rng: random.Random) -> LabeledRecord:
    extra = [Row("Mobile Compliance:checked", "domain")]
    record = _afilias_style(reg, tld="mobi", extra_domain_rows=extra)
    return record


def render_name(reg: Registration, rng: random.Random) -> LabeledRecord:
    """Verisign name: the shortest of the new TLD records (28 lines)."""
    contact = reg.registrant
    rows: list[Row] = [
        Row(f"Domain Name: {reg.domain}", "domain"),
        Row(f"Registry Domain ID: {rng.randint(10**6, 10**7)}", "domain"),
        Row(f"Sponsoring Registrar: {REGISTRY_OPERATORS['name']}", "registrar"),
        Row(f"Domain Status: {reg.statuses[0]}", "domain"),
        Row(f"Registrant Name: {contact.name}", "registrant", "name"),
        Row(f"Registrant Street: {contact.street}", "registrant", "street"),
        Row(f"Registrant City: {contact.city}", "registrant", "city"),
        Row(f"Registrant Postal Code: {contact.postcode}", "registrant",
            "postcode"),
        Row(f"Registrant Country: {contact.country_code or 'US'}",
            "registrant", "country"),
        Row(f"Registrant Email: {contact.email}", "registrant", "email"),
        Row(f"Name Server: {reg.name_servers[0]}", "domain"),
        Row(f"Name Server: {reg.name_servers[-1]}", "domain"),
        Row(f"Renewed On: {fmt_date(reg.updated, 'iso')}", "date"),
        Row(f"Created On: {fmt_date(reg.created, 'iso')}", "date"),
        Row(f"Expires On: {fmt_date(reg.expires, 'iso')}", "date"),
        blank(),
        Row("Queries are rate limited; see http://www.verisign.com/", "null"),
    ]
    return build_record(reg, rows, family="tld_name", tld="name")


def render_org(reg: Registration, rng: random.Random) -> LabeledRecord:
    """PIR org thick record: the info layout under the PIR banner
    (ICANN standard; 0 errors for both parsers in Table 2)."""
    record = render_info(reg, rng)
    raw = [ln.replace(REGISTRY_OPERATORS["info"], REGISTRY_OPERATORS["org"])
           for ln in record.raw_lines]
    lines = [
        type(line)(
            text=line.text.replace(REGISTRY_OPERATORS["info"],
                                   REGISTRY_OPERATORS["org"]),
            block=line.block,
            sub=line.sub,
        )
        for line in record.lines
    ]
    return LabeledRecord(
        domain=reg.domain, raw_lines=raw, lines=lines, tld="org",
        registrar=REGISTRY_OPERATORS["org"], schema_family="tld_org",
    )


def render_pro(reg: Registration, rng: random.Random) -> LabeledRecord:
    """RegistryPro: Afilias layout plus profession credential lines."""
    extra = [
        Row("Profession:Attorney", "domain"),
        Row("Credential Authority:State Bar", "domain"),
    ]
    return _afilias_style(reg, tld="pro", extra_domain_rows=extra)


def render_travel(reg: Registration, rng: random.Random) -> LabeledRecord:
    """Tralliance travel: uppercase keys with ``=`` separators.

    ``=`` is not a separator com rule parsers know, so every line looks like
    bare prose to them -- the mechanism behind the 34/80 rule-based errors
    in Table 2.
    """
    contact = reg.registrant

    def kv(title: str, value: str, block: str, sub: str | None = None) -> Row:
        return Row(f"{title} = {value}", block, sub)

    rows: list[Row] = [
        kv("DOMAIN", reg.domain.upper(), "domain"),
        kv("REGISTRY", REGISTRY_OPERATORS["travel"], "registrar"),
        kv("CREATED", fmt_date(reg.created, "iso"), "date"),
        kv("MODIFIED", fmt_date(reg.updated, "iso"), "date"),
        kv("EXPIRES", fmt_date(reg.expires, "iso"), "date"),
        kv("STATUS", reg.statuses[0].upper(), "domain"),
        blank(),
        kv("REGISTRANT NAME", contact.name, "registrant", "name"),
        kv("REGISTRANT ORGANIZATION", contact.org, "registrant", "org"),
        kv("REGISTRANT ADDRESS", contact.street, "registrant", "street"),
        kv("REGISTRANT CITY", contact.city, "registrant", "city"),
        kv("REGISTRANT STATE", contact.state, "registrant", "state"),
        kv("REGISTRANT POSTCODE", contact.postcode, "registrant", "postcode"),
        kv("REGISTRANT COUNTRY", contact.country_display or "United States",
           "registrant", "country"),
        kv("REGISTRANT PHONE", contact.phone, "registrant", "phone"),
        kv("REGISTRANT EMAIL", contact.email, "registrant", "email"),
        blank(),
        kv("ADMIN NAME", reg.admin.name, "other"),
        kv("ADMIN EMAIL", reg.admin.email, "other"),
        kv("TECH NAME", reg.tech.name, "other"),
        kv("TECH EMAIL", reg.tech.email, "other"),
        blank(),
    ]
    rows.extend(kv("NAMESERVER", ns.upper(), "domain") for ns in reg.name_servers)
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_travel", tld="travel")


def render_us(reg: Registration, rng: random.Random) -> LabeledRecord:
    """Neustar us: fixed-width columns with NO colon separator.

    Titles and values are separated by space padding alone, which defeats
    separator-keyed rules entirely (Table 2: 38/88 rule-based errors).
    """
    contact = reg.registrant

    def kv(title: str, value: str, block: str, sub: str | None = None) -> Row:
        return Row(f"{title:<42}{value}", block, sub)

    rows: list[Row] = [
        kv("Domain Name", reg.domain.upper(), "domain"),
        kv("Domain ID", f"D{rng.randint(10**7, 10**8)}-US", "domain"),
        kv("Sponsoring Registrar", REGISTRY_OPERATORS["us"], "registrar"),
        kv("Registrant ID", contact.handle, "registrant", "id"),
        kv("Registrant Name", contact.name, "registrant", "name"),
        kv("Registrant Organization", contact.org, "registrant", "org"),
        kv("Registrant Address1", contact.street, "registrant", "street"),
        kv("Registrant Address2", f"Suite {rng.randint(1, 400)}",
           "registrant", "street"),
        kv("Registrant City", contact.city, "registrant", "city"),
        kv("Registrant State/Province", contact.state, "registrant", "state"),
        kv("Registrant Postal Code", contact.postcode, "registrant",
           "postcode"),
        kv("Registrant Country", contact.country_display or "United States",
           "registrant", "country"),
        kv("Registrant Country Code", contact.country_code or "US",
           "registrant", "country"),
        kv("Registrant Phone Number", contact.phone, "registrant", "phone"),
        kv("Registrant Email", contact.email, "registrant", "email"),
        kv("Registrant Application Purpose", "P1", "registrant", "other"),
        kv("Registrant Nexus Category", "C11", "registrant", "other"),
    ]
    for role, c in (("Administrative Contact", reg.admin),
                    ("Technical Contact", reg.tech),
                    ("Billing Contact", reg.billing or reg.admin)):
        rows.append(kv(f"{role} ID", c.handle, "other"))
        rows.append(kv(f"{role} Name", c.name, "other"))
        rows.append(kv(f"{role} Email", c.email, "other"))
        rows.append(kv(f"{role} Phone Number", c.phone, "other"))
    rows.extend(
        kv("Name Server", ns.upper(), "domain") for ns in reg.name_servers
    )
    rows.append(kv("Domain Registration Date",
                   fmt_date(reg.created, "dmy_abbr"), "date"))
    rows.append(kv("Domain Expiration Date",
                   fmt_date(reg.expires, "dmy_abbr"), "date"))
    rows.append(blank())
    rows.extend(_legal_rows())
    return build_record(reg, rows, family="tld_us", tld="us")


def render_xxx(reg: Registration, rng: random.Random) -> LabeledRecord:
    extra = [Row("Membership Status:approved member of the Sponsored Community",
                 "domain")]
    return _afilias_style(reg, tld="xxx", extra_domain_rows=extra)


NEW_TLDS = {
    "aero": render_aero,
    "asia": render_asia,
    "biz": render_biz,
    "coop": render_coop,
    "info": render_info,
    "mobi": render_mobi,
    "name": render_name,
    "org": render_org,
    "pro": render_pro,
    "travel": render_travel,
    "us": render_us,
    "xxx": render_xxx,
}
