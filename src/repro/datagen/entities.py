"""Synthetic people, organizations, and postal addresses per country.

These banks are intentionally broad rather than deep: the parser's features
are driven by field *titles* and text *shapes* (five-digit ZIPs, phone
punctuation, email syntax), so a few dozen names per region exercise the
same code paths as millions of real registrants while keeping the package
small.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.countries import Country, UNKNOWN, country_by_code


@dataclass(frozen=True)
class Contact:
    """One WHOIS contact (registrant, admin, tech, or billing)."""

    name: str
    org: str
    street: str
    city: str
    state: str
    postcode: str
    country_code: str  # ISO code, or countries.UNKNOWN
    country_display: str  # how the record spells it ("" when omitted)
    phone: str
    fax: str
    email: str
    handle: str


_FIRST_NAMES: dict[str, tuple[str, ...]] = {
    "western": ("John", "Mary", "James", "Sarah", "David", "Emma", "Michael",
                "Laura", "Robert", "Alice", "Peter", "Susan", "Thomas",
                "Karen", "Andrew", "Rachel", "Brian", "Nancy", "Kevin",
                "Julia"),
    "german": ("Hans", "Anna", "Klaus", "Greta", "Jurgen", "Heike", "Stefan",
               "Monika", "Wolfgang", "Sabine", "Dieter", "Petra"),
    "french": ("Pierre", "Marie", "Jean", "Sophie", "Luc", "Camille",
               "Antoine", "Claire", "Michel", "Isabelle", "Henri", "Elodie"),
    "spanish": ("Carlos", "Maria", "Jose", "Lucia", "Miguel", "Carmen",
                "Antonio", "Elena", "Javier", "Rosa", "Diego", "Ana"),
    "chinese": ("Wei", "Li", "Jun", "Min", "Hua", "Lei", "Yan", "Ping",
                "Xin", "Hong", "Tao", "Fang"),
    "japanese": ("Hiroshi", "Yuki", "Takeshi", "Akiko", "Kenji", "Naoko",
                 "Satoshi", "Mariko", "Kazuo", "Emi", "Daisuke", "Rie"),
    "indian": ("Raj", "Priya", "Amit", "Sunita", "Vijay", "Anita", "Sanjay",
               "Kavita", "Rahul", "Deepa", "Arun", "Meena"),
    "turkish": ("Mehmet", "Ayse", "Mustafa", "Fatma", "Ahmet", "Emine",
                "Ali", "Zeynep", "Hasan", "Elif"),
    "vietnamese": ("Nguyen", "Linh", "Minh", "Huong", "Duc", "Mai", "Tuan",
                   "Lan", "Hai", "Thao"),
    "russian": ("Ivan", "Olga", "Dmitri", "Natasha", "Sergei", "Elena",
                "Alexei", "Irina", "Mikhail", "Svetlana"),
    "italian": ("Marco", "Giulia", "Luca", "Francesca", "Paolo", "Chiara",
                "Andrea", "Valentina", "Giovanni", "Elisa"),
    "korean": ("Min-jun", "Seo-yeon", "Ji-hoon", "Ha-eun", "Dong-hyun",
               "Soo-jin", "Young-ho", "Eun-ji"),
}

_LAST_NAMES: dict[str, tuple[str, ...]] = {
    "western": ("Smith", "Johnson", "Brown", "Taylor", "Wilson", "Davies",
                "Clark", "Walker", "Harris", "Lewis", "Martin", "Young",
                "Hall", "Allen", "Wright", "King", "Scott", "Baker",
                "Adams", "Nelson"),
    "german": ("Mueller", "Schmidt", "Schneider", "Fischer", "Weber",
               "Wagner", "Becker", "Hoffmann", "Koch", "Richter"),
    "french": ("Martin", "Bernard", "Dubois", "Laurent", "Moreau", "Petit",
               "Durand", "Leroy", "Rousseau", "Fontaine"),
    "spanish": ("Garcia", "Martinez", "Lopez", "Sanchez", "Gonzalez",
                "Rodriguez", "Fernandez", "Perez", "Gomez", "Diaz"),
    "chinese": ("Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang",
                "Zhao", "Wu", "Zhou", "Xu", "Sun"),
    "japanese": ("Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito",
                 "Yamamoto", "Nakamura", "Kobayashi", "Kato"),
    "indian": ("Sharma", "Patel", "Singh", "Kumar", "Gupta", "Verma",
               "Reddy", "Mehta", "Joshi", "Nair"),
    "turkish": ("Yilmaz", "Kaya", "Demir", "Celik", "Sahin", "Ozturk",
                "Arslan", "Dogan"),
    "vietnamese": ("Tran", "Le", "Pham", "Hoang", "Vu", "Dang", "Bui", "Do"),
    "russian": ("Ivanov", "Petrov", "Sidorov", "Smirnov", "Volkov",
                "Kuznetsov", "Popov", "Sokolov"),
    "italian": ("Rossi", "Russo", "Ferrari", "Esposito", "Bianchi",
                "Romano", "Colombo", "Ricci"),
    "korean": ("Kim", "Lee", "Park", "Choi", "Jung", "Kang", "Cho", "Yoon"),
}

_ORG_STEMS = ("Blue", "Global", "Prime", "Next", "Bright", "Silver", "Apex",
              "North", "Pacific", "Summit", "Green", "Rapid", "Central",
              "Digital", "First", "Star", "Union", "Delta", "Golden", "Iron")
_ORG_CORES = ("Tech", "Media", "Trade", "Web", "Data", "Soft", "Net", "Shop",
              "Travel", "Consult", "Market", "Design", "Host", "Studio",
              "Systems", "Labs")
_ORG_SUFFIXES = ("LLC", "Inc.", "Ltd.", "GmbH", "S.A.", "Co., Ltd.",
                 "Pty Ltd", "Corp.", "K.K.", "B.V.")

_STREET_NAMES = ("Main", "Oak", "Maple", "Cedar", "Park", "Lake", "Hill",
                 "River", "Sunset", "Washington", "Lincoln", "Jefferson",
                 "Madison", "Franklin", "Highland", "Valley", "Forest",
                 "Spring", "Church", "Market")
_STREET_SUFFIXES = ("St", "Ave", "Blvd", "Dr", "Rd", "Ln", "Way", "Ct")

_CITIES: dict[str, tuple[tuple[str, str], ...]] = {
    # (city, state/province) pairs per country code
    "US": (("New York", "NY"), ("Los Angeles", "CA"), ("Chicago", "IL"),
           ("Houston", "TX"), ("Phoenix", "AZ"), ("San Diego", "CA"),
           ("Dallas", "TX"), ("Seattle", "WA"), ("Denver", "CO"),
           ("Boston", "MA"), ("Atlanta", "GA"), ("Miami", "FL"),
           ("Portland", "OR"), ("Austin", "TX"), ("Scottsdale", "AZ")),
    "CA": (("Toronto", "ON"), ("Vancouver", "BC"), ("Montreal", "QC"),
           ("Calgary", "AB"), ("Ottawa", "ON")),
    "GB": (("London", "Greater London"), ("Manchester", "Greater Manchester"),
           ("Birmingham", "West Midlands"), ("Leeds", "West Yorkshire"),
           ("Bristol", "Avon")),
    "CN": (("Beijing", "Beijing"), ("Shanghai", "Shanghai"),
           ("Hangzhou", "Zhejiang"), ("Shenzhen", "Guangdong"),
           ("Guangzhou", "Guangdong"), ("Chengdu", "Sichuan")),
    "JP": (("Tokyo", "Tokyo"), ("Osaka", "Osaka"), ("Shibuya-ku", "Tokyo"),
           ("Yokohama", "Kanagawa"), ("Nagoya", "Aichi")),
    "DE": (("Berlin", "Berlin"), ("Munich", "Bayern"), ("Hamburg", "Hamburg"),
           ("Cologne", "NRW"), ("Frankfurt", "Hessen")),
    "FR": (("Paris", "Ile-de-France"), ("Lyon", "Rhone"),
           ("Marseille", "Bouches-du-Rhone"), ("Toulouse", "Haute-Garonne")),
    "ES": (("Madrid", "Madrid"), ("Barcelona", "Barcelona"),
           ("Valencia", "Valencia"), ("Sevilla", "Andalucia")),
    "AU": (("Sydney", "NSW"), ("Melbourne", "VIC"), ("Brisbane", "QLD"),
           ("Perth", "WA")),
    "IN": (("Mumbai", "Maharashtra"), ("Delhi", "Delhi"),
           ("Bangalore", "Karnataka"), ("Chennai", "Tamil Nadu")),
    "TR": (("Istanbul", "Istanbul"), ("Ankara", "Ankara"),
           ("Izmir", "Izmir")),
    "VN": (("Hanoi", "Hanoi"), ("Ho Chi Minh City", "Ho Chi Minh")),
    "RU": (("Moscow", "Moscow"), ("Saint Petersburg", "Saint Petersburg")),
    "HK": (("Hong Kong", "Hong Kong"), ("Kowloon", "Hong Kong")),
    "NL": (("Amsterdam", "Noord-Holland"), ("Rotterdam", "Zuid-Holland")),
    "IT": (("Rome", "Lazio"), ("Milan", "Lombardia"), ("Turin", "Piemonte")),
    "BR": (("Sao Paulo", "SP"), ("Rio de Janeiro", "RJ")),
    "KR": (("Seoul", "Seoul"), ("Busan", "Busan")),
    "SE": (("Stockholm", "Stockholm"), ("Gothenburg", "Vastra Gotaland")),
    "PL": (("Warsaw", "Mazowieckie"), ("Krakow", "Malopolskie")),
    "MX": (("Mexico City", "CDMX"), ("Guadalajara", "Jalisco")),
    "CH": (("Zurich", "ZH"), ("Geneva", "GE")),
    "DK": (("Copenhagen", "Hovedstaden"),),
    "NO": (("Oslo", "Oslo"),),
    "IL": (("Tel Aviv", "Tel Aviv"),),
}

_EMAIL_DOMAINS = ("gmail.com", "yahoo.com", "hotmail.com", "outlook.com",
                  "aol.com", "mail.com", "163.com", "qq.com", "web.de",
                  "orange.fr", "yandex.ru", "naver.com")


class EntityGenerator:
    """Deterministic generator of contacts, organizations, and domains."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    # ------------------------------------------------------------------
    # Contacts
    # ------------------------------------------------------------------

    def person_name(self, region: str) -> str:
        """A given+family name plausible for ``region``."""
        first = self.rng.choice(_FIRST_NAMES.get(region, _FIRST_NAMES["western"]))
        last = self.rng.choice(_LAST_NAMES.get(region, _LAST_NAMES["western"]))
        return f"{first} {last}"

    def organization(self) -> str:
        """A synthetic company name with an optional legal suffix."""
        stem = self.rng.choice(_ORG_STEMS)
        core = self.rng.choice(_ORG_CORES)
        suffix = self.rng.choice(_ORG_SUFFIXES)
        return f"{stem}{core} {suffix}"

    def street(self) -> str:
        """A numbered street address line."""
        number = self.rng.randint(1, 9999)
        name = self.rng.choice(_STREET_NAMES)
        suffix = self.rng.choice(_STREET_SUFFIXES)
        if self.rng.random() < 0.15:
            return f"{number} {name} {suffix} Suite {self.rng.randint(100, 999)}"
        return f"{number} {name} {suffix}"

    def postcode(self, country_code: str) -> str:
        """A postcode in ``country_code``'s national format."""
        rng = self.rng
        if country_code in ("US",):
            return f"{rng.randint(10000, 99599):05d}"
        if country_code == "GB":
            letters = "ABCDEFGHJKLMNPRSTUWXY"
            return (f"{rng.choice(letters)}{rng.choice(letters)}"
                    f"{rng.randint(1, 9)} {rng.randint(1, 9)}"
                    f"{rng.choice(letters)}{rng.choice(letters)}")
        if country_code == "CA":
            letters = "ABCEGHJKLMNPRSTVXY"
            return (f"{rng.choice(letters)}{rng.randint(0, 9)}"
                    f"{rng.choice(letters)} {rng.randint(0, 9)}"
                    f"{rng.choice(letters)}{rng.randint(0, 9)}")
        if country_code == "JP":
            return f"{rng.randint(100, 999)}-{rng.randint(0, 9999):04d}"
        if country_code == "CN":
            return f"{rng.randint(100000, 699999)}"
        if country_code in ("DE", "FR", "ES", "IT", "TR", "MX"):
            return f"{rng.randint(10000, 98999):05d}"
        if country_code == "AU":
            return f"{rng.randint(2000, 7999)}"
        if country_code == "IN":
            return f"{rng.randint(110000, 999999)}"
        if country_code in ("NL",):
            return f"{rng.randint(1000, 9999)} {rng.choice('ABCDEFG')}{rng.choice('ABCDEFG')}"
        return f"{rng.randint(10000, 99999)}"

    def phone(self, country: Country, style: str = "icann") -> str:
        """A phone number with ``country``'s dialing code, in ``style``."""
        rng = self.rng
        national = rng.randint(200_000_000, 999_999_999)
        if style == "icann":
            return f"+{country.phone_cc}.{national}"
        if style == "dotted":
            digits = str(national)
            return f"+{country.phone_cc} {digits[:3]}.{digits[3:6]}.{digits[6:]}"
        digits = str(national)
        return f"({digits[:3]}) {digits[3:6]}-{digits[6:]}"

    def email(self, name: str, domain: str | None = None) -> str:
        """An address derived from ``name`` at ``domain`` or a mail host."""
        local = name.lower().replace(" ", ".").replace("'", "")
        host = domain or self.rng.choice(_EMAIL_DOMAINS)
        if self.rng.random() < 0.25:
            local = f"{local}{self.rng.randint(1, 99)}"
        return f"{local}@{host}"

    def handle(self, prefix: str = "C") -> str:
        """A registry-style contact handle like ``C123456``."""
        return f"{prefix}{self.rng.randint(10_000_000, 99_999_999)}"

    def contact(
        self,
        country_code: str,
        *,
        org: str | None = None,
        with_country: bool = True,
    ) -> Contact:
        """A full synthetic contact located in ``country_code``.

        With ``country_code == countries.UNKNOWN`` (or ``with_country=False``)
        the contact is generated from the western bank with no country line,
        which surfaces as "(Unknown)" in the survey, as in Table 3.
        """
        if country_code == UNKNOWN or not with_country:
            region, cc = "western", "US"
            display = ""
            code = UNKNOWN
        else:
            country = country_by_code(country_code)
            region, cc, code = country.region, country.code, country.code
            display = self.rng.choice(country.whois_spellings())
        name = self.person_name(region)
        city, state = self.rng.choice(_CITIES.get(cc, _CITIES["US"]))
        phone_country = country_by_code(cc)
        organization = org if org is not None else (
            self.organization() if self.rng.random() < 0.55 else name
        )
        return Contact(
            name=name,
            org=organization,
            street=self.street(),
            city=city,
            state=state,
            postcode=self.postcode(cc),
            country_code=code,
            country_display=display,
            phone=self.phone(phone_country),
            fax=self.phone(phone_country) if self.rng.random() < 0.4 else "",
            email=self.email(name),
            handle=self.handle(),
        )

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    _DOMAIN_WORDS = ("shop", "best", "my", "the", "top", "go", "web", "net",
                     "pro", "fast", "easy", "smart", "blue", "red", "new",
                     "site", "hub", "zone", "mart", "deal", "tech", "cloud",
                     "data", "play", "game", "news", "travel", "food", "home")

    def domain_name(self, tld: str = "com") -> str:
        """A fresh synthetic domain under ``tld``, unique per generator."""
        rng = self.rng
        n_words = rng.choice((1, 2, 2, 2, 3))
        label = "".join(rng.choice(self._DOMAIN_WORDS) for _ in range(n_words))
        if rng.random() < 0.2:
            label += str(rng.randint(1, 999))
        return f"{label}.{tld}"

    def name_servers(self, domain: str, count: int | None = None) -> list[str]:
        """A hosting provider's NS set (or vanity servers under ``domain``)."""
        rng = self.rng
        count = count or rng.choice((2, 2, 2, 3, 4))
        if rng.random() < 0.5:
            host = domain
        else:
            provider = rng.choice(
                ("domaincontrol.com", "cloudns.net", "registrar-servers.com",
                 "hostgator.com", "dnspod.net", "name-services.com")
            )
            host = provider
        return [f"ns{i + 1}.{host}" for i in range(count)]
