"""The ground-truth facts behind one domain registration.

A :class:`Registration` is the *semantic* record; schema families render it
into WHOIS text.  Keeping the two separate lets us (a) emit exact line-level
labels, and (b) validate the survey pipeline end to end, because the
parsed-and-aggregated results can be compared against the known inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.datagen.entities import Contact


@dataclass(frozen=True)
class Registration:
    """Everything a thick WHOIS record can say about one domain."""

    domain: str
    tld: str
    registrar_name: str
    registrar_iana_id: int
    registrar_url: str
    registrar_whois_server: str
    created: date
    updated: date
    expires: date
    statuses: tuple[str, ...]
    name_servers: tuple[str, ...]
    registrant: Contact
    admin: Contact
    tech: Contact
    billing: Contact | None = None
    reseller: str = ""
    dnssec: str = "unsigned"
    privacy_service: str | None = None
    brand: str | None = None
    blacklisted: bool = False
    schema_family: str = ""
    schema_version: int = 1
    extras: dict[str, str] = field(default_factory=dict)

    @property
    def is_private(self) -> bool:
        return self.privacy_service is not None

    @property
    def creation_year(self) -> int:
        return self.created.year

    @property
    def registrant_country(self) -> str:
        """ISO code of the registrant, or ``"??"`` when the record omits it."""
        return self.registrant.country_code
