"""Synthetic Domain Block List (DBL) membership (Section 6.4).

The paper joins its WHOIS database with the Spamhaus DBL and reports, for
com domains created in 2014, the registrant-country and registrar skews of
Tables 8 and 9.  We generate blacklisted registrations by sampling those
two distributions directly, which preserves exactly the joint shape the
analysis measures.
"""

from __future__ import annotations

import random

# Table 8: top 10 registrant countries of com domains on the DBL in 2014.
DBL_COUNTRY_DIST: dict[str, float] = {
    "US": 0.438,
    "JP": 0.251,
    "CN": 0.160,
    "VN": 0.013,
    "CA": 0.012,
    "FR": 0.012,
    "IN": 0.009,
    "GB": 0.009,
    "TR": 0.007,
    "RU": 0.005,
    "OTHER": 0.059,
    "??": 0.025,
}

# Table 9: top 10 registrars of com domains on the DBL in 2014.
DBL_REGISTRAR_DIST: dict[str, float] = {
    "eNom, Inc.": 0.251,
    "GoDaddy.com, LLC": 0.208,
    "GMO Internet, Inc. d/b/a Onamae.com": 0.205,
    "Register.com, Inc.": 0.045,
    "Moniker Online Services LLC": 0.038,
    "Network Solutions, LLC": 0.036,
    "PDR Ltd. d/b/a PublicDomainRegistry.com": 0.025,
    "Xin Net Technology Corporation": 0.027,
    "Name.com, Inc.": 0.022,
    "Bizcn.com, Inc.": 0.023,
    "OTHER": 0.120,
}


def weighted_choice(rng: random.Random, dist: dict[str, float]) -> str:
    """Draw one key from an (unnormalized) weight table."""
    total = sum(dist.values())
    x = rng.random() * total
    cumulative = 0.0
    for key, weight in dist.items():
        cumulative += weight
        if x < cumulative:
            return key
    return next(reversed(dist))


class BlacklistGenerator:
    """Samples the (country, registrar) pair of one blacklisted domain."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def sample_country(self) -> str:
        return weighted_choice(self.rng, DBL_COUNTRY_DIST)

    def sample_registrar(self) -> str:
        return weighted_choice(self.rng, DBL_REGISTRAR_DIST)
