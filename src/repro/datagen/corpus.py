"""The top-level corpus generator.

:class:`CorpusGenerator` ties the substrate together: it samples creation
years from a Figure 4a-shaped histogram, registrars from Table 5-shaped
(year-blended) market shares, registrant countries from Table 3 / Figure 5
mixtures, privacy services from Tables 6-7, brand organizations from
Table 4, and renders each registration through its registrar's schema
family with exact line labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date, timedelta

from repro.datagen.blacklist import BlacklistGenerator, weighted_choice
from repro.datagen.countries import OTHER_CODES, UNKNOWN, country_profile
from repro.datagen.entities import Contact, EntityGenerator
from repro.datagen.registrars import (
    REGISTRARS,
    RegistrarProfile,
    TAIL_REGISTRAR_COUNT,
    registrar_by_name,
    registrar_shares,
    tail_registrar_profile,
)
from repro.datagen.registration import Registration
from repro.datagen.schemas import family_by_name
from repro.datagen.tlds import EXAMPLE_DOMAINS, NEW_TLDS, REGISTRY_OPERATORS
from repro.datagen.zone import ZoneFile
from repro.whois.records import LabeledRecord

# Figure 4a: relative number of com domains created per year (the histogram
# accelerates, with small dips after the dot-com bust and 2008-09).
YEAR_WEIGHTS: dict[int, float] = {
    **{year: 0.0002 for year in range(1985, 1995)},
    1995: 0.002, 1996: 0.004, 1997: 0.006, 1998: 0.009, 1999: 0.014,
    2000: 0.020, 2001: 0.018, 2002: 0.017, 2003: 0.020, 2004: 0.026,
    2005: 0.033, 2006: 0.042, 2007: 0.052, 2008: 0.060, 2009: 0.058,
    2010: 0.072, 2011: 0.086, 2012: 0.103, 2013: 0.122, 2014: 0.234,
}

# Table 4: well-known brand companies with the most com domains.
BRAND_WEIGHTS: dict[str, int] = {
    "Amazon": 20596,
    "AOL": 17136,
    "Microsoft": 16694,
    "21st Century Fox": 14249,
    "Warner Bros.": 13674,
    "Yahoo": 10502,
    "Disney": 10342,
    "Google": 6612,
    "AT&T": 3931,
    "eBay": 2570,
    "Nike": 2566,
}

_STATUSES = ("clientTransferProhibited", "clientDeleteProhibited",
             "clientUpdateProhibited", "clientRenewProhibited", "ok")

_CRAWL_DATE = date(2015, 2, 17)  # the paper's zone-file snapshot


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation."""

    seed: int = 0
    #: probability that a drift-capable registrar renders its v2 template
    drift_probability: float = 0.0
    #: fraction of domains held by Table 4 brand companies.  The paper's true
    #: rate is ~0.12%; the default boost (~25x) keeps Table 4's ordering
    #: stable in corpora of thousands of records instead of 102M (shape,
    #: not scale).
    brand_rate: float = 0.03
    #: base privacy-protection probability for domains created in 2014
    #: (Figure 4b: passes 20% in 2014); earlier years scale down linearly.
    privacy_rate_2014: float = 0.21
    #: fraction of zone domains that expire before the crawl reaches them
    zone_expired_rate: float = 0.04
    #: probability that a rendered labelable line has a typo injected into
    #: its field title (two adjacent letters swapped), modeling the sloppy
    #: template edits real registrars ship.  Off by default: the paper's
    #: rule parser is exact on its own corpus.
    typo_rate: float = 0.0


class CorpusGenerator:
    """Deterministic generator of labeled WHOIS corpora and survey data."""

    def __init__(self, config: CorpusConfig | None = None, *, seed: int | None = None):
        """Seed the generator; ``seed=`` is shorthand for a default config."""
        if config is None:
            config = CorpusConfig(seed=seed if seed is not None else 0)
        elif seed is not None:
            raise ValueError("pass the seed via CorpusConfig or seed=, not both")
        self.config = config
        self.rng = random.Random(config.seed)
        self.entities = EntityGenerator(self.rng)
        self._blacklist = BlacklistGenerator(self.rng)
        self._seen_domains: set[str] = set()

    # ------------------------------------------------------------------
    # Elementary sampling
    # ------------------------------------------------------------------

    def sample_year(self) -> int:
        """Draw a creation year from the Figure 4 era distribution."""
        return int(weighted_choice(self.rng, {str(y): w for y, w in
                                              YEAR_WEIGHTS.items()}))

    def sample_registrar(self, year: int) -> RegistrarProfile:
        """Draw a registrar weighted by its market share in ``year``."""
        shares = registrar_shares(year)
        named_total = sum(shares.values())
        tail_mass = max(0.0, 1.0 - named_total)
        x = self.rng.random()
        cumulative = 0.0
        for name, share in shares.items():
            cumulative += share
            if x < cumulative:
                return registrar_by_name(name)
        index = min(
            int((x - named_total) / max(tail_mass, 1e-9) * TAIL_REGISTRAR_COUNT),
            TAIL_REGISTRAR_COUNT - 1,
        )
        return tail_registrar_profile(index)

    def sample_country(self, registrar: RegistrarProfile, year: int) -> str:
        """Draw a registrant country from the registrar's customer mix."""
        profile = country_profile(year)
        if registrar.country_mix is None:
            dist = profile
        elif registrar.mix_blend >= 1.0:
            dist = registrar.country_mix
        else:
            # Sorted for cross-process determinism of the sampling order.
            keys = sorted(set(profile) | set(registrar.country_mix))
            w = registrar.mix_blend
            dist = {
                key: w * registrar.country_mix.get(key, 0.0)
                + (1 - w) * profile.get(key, 0.0)
                for key in keys
            }
        code = weighted_choice(self.rng, dist)
        if code == "OTHER":
            code = self.rng.choice(OTHER_CODES)
        return code

    def _privacy_probability(self, registrar: RegistrarProfile, year: int) -> float:
        base = self.config.privacy_rate_2014 * max(0.0, (year - 1998) / 16.0)
        return min(0.9, base * registrar.privacy_multiplier)

    def _sample_dates(self, year: int) -> tuple[date, date, date]:
        created = date(year, self.rng.randint(1, 12), self.rng.randint(1, 28))
        if created >= _CRAWL_DATE:
            created = created.replace(year=year - 1) if year > 1985 else created
        updated = created + timedelta(days=self.rng.randint(0, 500))
        updated = min(updated, _CRAWL_DATE - timedelta(days=1))
        expires = _CRAWL_DATE + timedelta(days=self.rng.randint(30, 1000))
        return created, updated, expires

    def _privacy_contact(self, service: str) -> Contact:
        token = f"{self.rng.randint(10**7, 10**8 - 1)}"
        host = service.split()[0].lower().strip(",.") + "-privacy.com"
        return Contact(
            name="Registration Private",
            org=service,
            street="14455 N. Hayden Road Suite 219",
            city="Scottsdale",
            state="AZ",
            postcode="85260",
            country_code="US",
            country_display="United States",
            phone="+1.4806242599",
            fax="+1.4806242598",
            email=f"{token}@{host}",
            handle=f"P{token}",
        )

    def _unique_domain(self, tld: str) -> str:
        for _ in range(100):
            domain = self.entities.domain_name(tld)
            if domain not in self._seen_domains:
                self._seen_domains.add(domain)
                return domain
        # Fall back to an explicit counter; collisions are corpus-size bound.
        domain = f"domain{len(self._seen_domains)}.{tld}"
        self._seen_domains.add(domain)
        return domain

    # ------------------------------------------------------------------
    # Registrations
    # ------------------------------------------------------------------

    def sample_registration(
        self,
        *,
        year: int | None = None,
        tld: str = "com",
        registrar: RegistrarProfile | None = None,
        country: str | None = None,
        blacklisted: bool = False,
        domain: str | None = None,
    ) -> Registration:
        rng = self.rng
        year = year if year is not None else self.sample_year()
        registrar = registrar or self.sample_registrar(year)
        country_code = country or self.sample_country(registrar, year)
        created, updated, expires = self._sample_dates(year)

        brand = None
        privacy_service = None
        if rng.random() < self.config.brand_rate and country_code == "US":
            brand = weighted_choice(
                rng, {k: float(v) for k, v in BRAND_WEIGHTS.items()}
            )
        elif rng.random() < self._privacy_probability(registrar, year):
            services = registrar.privacy_services or (
                ("Whois Privacy Service", 1.0),
            )
            privacy_service = weighted_choice(rng, dict(services))

        if privacy_service is not None:
            registrant = self._privacy_contact(privacy_service)
        else:
            registrant = self.entities.contact(
                country_code,
                org=f"{brand} Inc." if brand else None,
            )
        admin = self.entities.contact(
            registrant.country_code if registrant.country_code != UNKNOWN else "US"
        )
        tech = self.entities.contact("US" if rng.random() < 0.5 else admin.country_code)
        billing = (
            self.entities.contact(admin.country_code) if rng.random() < 0.3 else None
        )
        domain = domain or self._unique_domain(tld)
        n_statuses = rng.choice((1, 1, 1, 2, 3))
        statuses = tuple(
            dict.fromkeys(rng.choice(_STATUSES) for _ in range(n_statuses))
        )
        family = family_by_name(registrar.schema_family)
        version = 1
        if (
            self.config.drift_probability > 0
            and registrar.drift
            and family.n_versions > 1
            and rng.random() < self.config.drift_probability
        ):
            version = 2
        return Registration(
            domain=domain,
            tld=tld,
            registrar_name=registrar.name,
            registrar_iana_id=registrar.iana_id,
            registrar_url=registrar.url,
            registrar_whois_server=registrar.whois_server,
            created=created,
            updated=updated,
            expires=expires,
            statuses=statuses,
            name_servers=tuple(self.entities.name_servers(domain)),
            registrant=registrant,
            admin=admin,
            tech=tech,
            billing=billing,
            dnssec="unsigned" if rng.random() < 0.95 else "signedDelegation",
            privacy_service=privacy_service,
            brand=brand,
            blacklisted=blacklisted,
            schema_family=registrar.schema_family,
            schema_version=version,
        )

    def render(self, registration: Registration) -> LabeledRecord:
        """Render a com registration through its registrar's schema family."""
        family = family_by_name(registration.schema_family)
        record = family.render(
            registration, self.rng, version=registration.schema_version
        )
        if self.config.typo_rate > 0.0:
            record = self._inject_typos(record)
        return record

    def _inject_typos(self, record: LabeledRecord) -> LabeledRecord:
        """Swap two adjacent title letters on a fraction of lines."""
        from repro.whois.records import LabeledLine, LabeledRecord

        new_raw: list[str] = []
        new_lines: list[LabeledLine] = []
        line_iter = iter(record.lines)
        for raw in record.raw_lines:
            from repro.whois.records import is_labelable

            if not is_labelable(raw):
                new_raw.append(raw)
                continue
            line = next(line_iter)
            text = line.text
            if self.rng.random() < self.config.typo_rate:
                letters = [i for i, ch in enumerate(text[:-1])
                           if ch.isalpha() and text[i + 1].isalpha()]
                colon = text.find(":")
                candidates = [i for i in letters if colon < 0 or i < colon - 1]
                if candidates:
                    i = self.rng.choice(candidates)
                    text = text[:i] + text[i + 1] + text[i] + text[i + 2:]
            new_raw.append(text)
            new_lines.append(
                LabeledLine(text=text, block=line.block, sub=line.sub)
            )
        return LabeledRecord(
            domain=record.domain,
            raw_lines=new_raw,
            lines=new_lines,
            tld=record.tld,
            registrar=record.registrar,
            schema_family=record.schema_family,
        )

    # ------------------------------------------------------------------
    # Corpora
    # ------------------------------------------------------------------

    def labeled_corpus(self, n: int) -> list[LabeledRecord]:
        """``n`` labeled thick com records (the 86K-record analogue)."""
        return [self.render(self.sample_registration()) for _ in range(n)]

    def registrations(self, n: int) -> list[Registration]:
        """``n`` fresh registrations with distinct domains."""
        return [self.sample_registration() for _ in range(n)]

    def dbl_registrations(self, n: int) -> list[Registration]:
        """``n`` blacklisted 2014 registrations with Table 8/9 skews."""
        result = []
        for _ in range(n):
            registrar_name = self._blacklist.sample_registrar()
            if registrar_name == "OTHER":
                registrar = tail_registrar_profile(
                    self.rng.randrange(TAIL_REGISTRAR_COUNT)
                )
            else:
                registrar = registrar_by_name(registrar_name)
            country = self._blacklist.sample_country()
            if country == "OTHER":
                country = self.rng.choice(OTHER_CODES)
            result.append(
                self.sample_registration(
                    year=2014,
                    registrar=registrar,
                    country=country,
                    blacklisted=True,
                )
            )
        return result

    def new_tld_record(self, tld: str) -> LabeledRecord:
        """One labeled record for a Table 2 TLD, using the paper's example domain."""
        renderer = NEW_TLDS[tld]
        operator = REGISTRY_OPERATORS[tld]
        registrar = RegistrarProfile(
            name=operator,
            iana_id=9999,
            whois_server=f"whois.nic.{tld}",
            url=f"http://nic.{tld}",
            share_alltime=0.0,
            share_2014=0.0,
            schema_family="generic_a",  # unused: the TLD has its own renderer
            country_mix=None,
        )
        registration = self.sample_registration(
            tld=tld,
            registrar=registrar,
            domain=EXAMPLE_DOMAINS[tld],
        )
        return renderer(registration, self.rng)

    def new_tld_records(self) -> dict[str, LabeledRecord]:
        """One labeled sample record per Table 2 new-TLD registry."""
        return {tld: self.new_tld_record(tld) for tld in sorted(NEW_TLDS)}

    def zone(self, n: int) -> tuple[ZoneFile, dict[str, Registration]]:
        """A zone-file snapshot plus the registry's backing registrations.

        A config-controlled fraction of domains is marked expired: they are
        listed in the snapshot but return "no match" when crawled, as
        happened to the paper's crawler.
        """
        registrations = {}
        domains = []
        expired = set()
        for _ in range(n):
            registration = self.sample_registration()
            domains.append(registration.domain)
            registrations[registration.domain] = registration
            if self.rng.random() < self.config.zone_expired_rate:
                expired.add(registration.domain)
        return ZoneFile(tld="com", domains=domains, expired=expired), registrations
