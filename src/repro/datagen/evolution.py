"""Temporal evolution of registrations between crawls.

The paper crawled com twice (February-May and July-August 2015) and notes
format drift and churn between snapshots.  This module evolves a
registration across the inter-crawl gap: renewals, registrar transfers,
registrant changes, privacy toggles, and expirations -- the event mix that
drives the two-snapshot analyses in :mod:`repro.survey.changes`.
"""

from __future__ import annotations

import random
from dataclasses import replace
from datetime import timedelta
from enum import Enum

from repro.datagen.entities import EntityGenerator
from repro.datagen.registrars import RegistrarProfile
from repro.datagen.registration import Registration


class ChurnEvent(str, Enum):
    UNCHANGED = "unchanged"
    RENEWED = "renewed"
    TRANSFERRED = "transferred"
    REGISTRANT_CHANGED = "registrant_changed"
    PRIVACY_ADDED = "privacy_added"
    PRIVACY_REMOVED = "privacy_removed"
    DROPPED = "dropped"


#: default per-gap event probabilities (remainder = unchanged)
DEFAULT_RATES: dict[ChurnEvent, float] = {
    ChurnEvent.DROPPED: 0.03,
    ChurnEvent.TRANSFERRED: 0.02,
    ChurnEvent.RENEWED: 0.10,
    ChurnEvent.REGISTRANT_CHANGED: 0.03,
    ChurnEvent.PRIVACY_ADDED: 0.02,
    ChurnEvent.PRIVACY_REMOVED: 0.01,
}


def evolve_registration(
    registration: Registration,
    rng: random.Random,
    entities: EntityGenerator,
    *,
    rates: dict[ChurnEvent, float] | None = None,
    transfer_targets: tuple[RegistrarProfile, ...] = (),
) -> tuple[ChurnEvent, Registration | None]:
    """One inter-crawl step.  Returns (event, evolved registration or None).

    Events are mutually exclusive per step; privacy toggles only fire when
    applicable (adding privacy to an already-private domain is a no-op and
    resolves to UNCHANGED).
    """
    rates = rates or DEFAULT_RATES
    x = rng.random()
    cumulative = 0.0
    event = ChurnEvent.UNCHANGED
    for candidate, probability in rates.items():
        cumulative += probability
        if x < cumulative:
            event = candidate
            break

    if event is ChurnEvent.DROPPED:
        return event, None
    if event is ChurnEvent.RENEWED:
        return event, replace(
            registration,
            expires=registration.expires + timedelta(days=365),
            updated=registration.updated + timedelta(days=60),
        )
    if event is ChurnEvent.TRANSFERRED and transfer_targets:
        target = rng.choice(transfer_targets)
        if target.name != registration.registrar_name:
            return event, replace(
                registration,
                registrar_name=target.name,
                registrar_iana_id=target.iana_id,
                registrar_url=target.url,
                registrar_whois_server=target.whois_server,
                schema_family=target.schema_family,
                schema_version=1,
                updated=registration.updated + timedelta(days=30),
            )
        event = ChurnEvent.UNCHANGED
    if event is ChurnEvent.REGISTRANT_CHANGED:
        new_contact = entities.contact(
            registration.registrant.country_code
            if registration.registrant.country_code != "??"
            else "US"
        )
        return event, replace(
            registration,
            registrant=new_contact,
            privacy_service=None,
            updated=registration.updated + timedelta(days=45),
        )
    if event is ChurnEvent.PRIVACY_ADDED and not registration.is_private:
        service = (
            registration.privacy_service
            or "Whois Privacy Service"
        )
        # Reuse the corpus generator's convention: privacy replaces the
        # registrant contact with the service's.
        private_contact = replace(
            registration.registrant,
            name="Registration Private",
            org=service,
            email=f"{rng.randint(10**7, 10**8)}@privacy.example",
        )
        return event, replace(
            registration,
            privacy_service=service,
            registrant=private_contact,
        )
    if event is ChurnEvent.PRIVACY_REMOVED and registration.is_private:
        return event, replace(
            registration,
            privacy_service=None,
            registrant=entities.contact("US"),
        )
    return ChurnEvent.UNCHANGED, registration


def evolve_snapshot(
    registrations: dict[str, Registration],
    rng: random.Random,
    entities: EntityGenerator,
    *,
    rates: dict[ChurnEvent, float] | None = None,
    transfer_targets: tuple[RegistrarProfile, ...] = (),
) -> tuple[dict[str, Registration], dict[str, ChurnEvent]]:
    """Evolve a whole registry snapshot; returns (new snapshot, events)."""
    evolved: dict[str, Registration] = {}
    events: dict[str, ChurnEvent] = {}
    for domain, registration in registrations.items():
        event, new_registration = evolve_registration(
            registration, rng, entities,
            rates=rates, transfer_targets=transfer_targets,
        )
        events[domain] = event
        if new_registration is not None:
            evolved[domain] = new_registration
    return evolved, events
