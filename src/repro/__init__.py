"""repro — a reproduction of "Who is .com? Learning to Parse WHOIS Records".

The package is organized as::

    repro.crf      linear-chain CRF engine (from scratch, numpy)
    repro.whois    WHOIS record model and the paper's text featurization
    repro.parser   statistical two-level parser + baseline parsers
    repro.datagen  synthetic WHOIS corpus substrate (registrars, schemas, zone)
    repro.netsim   WHOIS protocol simulation and the crawler
    repro.survey   Section 6 registration survey analyses
    repro.eval     metrics, cross-validation, per-figure experiment drivers

The most common entry points are re-exported here.
"""

from repro.crf import ChainCRF, Sequence

__version__ = "1.0.0"

__all__ = [
    "ChainCRF",
    "CorpusGenerator",
    "Sequence",
    "WhoisParser",
    "__version__",
]


def __getattr__(name: str):
    # Convenience lazy re-exports; the heavy subpackages only import when
    # actually used.
    if name == "WhoisParser":
        from repro.parser import WhoisParser

        return WhoisParser
    if name == "CorpusGenerator":
        from repro.datagen import CorpusGenerator

        return CorpusGenerator
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
