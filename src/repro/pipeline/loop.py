"""The closed §5.3 maintenance loop: detect → label → retrain → roll out.

:class:`MaintenanceLoop` is the subsystem that keeps a deployed parser
accurate as registrars invent new record formats, at the paper's claimed
cost of **one labeled example per new format**:

1. every served record flows through :meth:`observe`, which scores it
   with the active model's posterior marginals (skipping structurally
   garbled records via the resilience layer's ``RecordGate`` -- damage
   is quarantine's problem, not drift's);
2. the :class:`~repro.pipeline.drift.DriftDetector` clusters
   low-confidence records into candidate schema families;
3. on an alert, the single most-informative cluster member is sent to
   the :class:`~repro.pipeline.labeling.LabelOracle`;
4. a **copy** of the active parser is warm-start retrained on the one
   new label (plus replay) by the
   :class:`~repro.pipeline.retrain.WarmStartRetrainer`;
5. the candidate is published to the
   :class:`~repro.serve.models.ModelRegistry` *unactivated*, evaluated
   on the held-out corpus, and only activated (hot-swapped, atomically,
   zero dropped requests) if it does not regress; a candidate that
   regresses is left published-but-inactive, which is the registry-level
   rollback.

Attach the loop to a live :class:`~repro.serve.app.ServeApp` via
``app=`` and activation goes through ``app.swap_model`` so the RDAP
cache is invalidated too.  ``python -m repro maintain`` drives the same
loop from the command line over a crawl JSONL stream.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import obs
from repro.eval.metrics import evaluate_parser
from repro.pipeline.drift import DriftAlert, DriftDetector
from repro.pipeline.labeling import LabelOracle, LabelRequest, select_exemplar
from repro.pipeline.retrain import RetrainReport, WarmStartRetrainer
from repro.resilience.quarantine import RecordGate
from repro.serve.models import ModelRegistry
from repro.whois.records import LabeledRecord

__all__ = ["MaintenanceConfig", "MaintenanceEvent", "MaintenanceLoop", "LoopReport"]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Tuning knobs for the maintenance loop."""

    #: line-marginal floor below which a record counts as low-confidence
    min_confidence: float = 0.90
    #: low-confidence records a candidate family needs to raise an alert
    min_cluster_size: int = 3
    #: earlier training records replayed during each warm retrain
    replay_size: int = 50
    #: held-out line-error increase (absolute) a candidate may cost and
    #: still be activated; anything worse is rejected
    max_regression: float = 0.002
    #: activate successful candidates (False: publish only, e.g. for a
    #: canary stage driven elsewhere)
    activate: bool = True


@dataclass(frozen=True)
class MaintenanceEvent:
    """One loop decision, for the report/audit trail."""

    kind: str  # drift_alert | label_pending | retrained | activated | rejected
    family_id: str
    detail: str = ""
    version: "str | None" = None
    retrain: "RetrainReport | None" = None
    holdout_error_before: "float | None" = None
    holdout_error_after: "float | None" = None


@dataclass
class LoopReport:
    """Aggregated outcome of a stream run through the loop."""

    records_seen: int = 0
    quarantined: int = 0
    events: list[MaintenanceEvent] = field(default_factory=list)
    label_requests: list[LabelRequest] = field(default_factory=list)

    @property
    def alerts(self) -> list[MaintenanceEvent]:
        """The drift-alert events, in stream order."""
        return [e for e in self.events if e.kind == "drift_alert"]

    @property
    def activated_versions(self) -> list[str]:
        """Model versions that passed the gate and went live."""
        return [e.version for e in self.events if e.kind == "activated"]

    @property
    def rejected_versions(self) -> list[str]:
        """Candidate versions published but held back by regression."""
        return [e.version for e in self.events if e.kind == "rejected"]


class MaintenanceLoop:
    """Closed-loop parser maintenance over a stream of raw records.

    Parameters
    ----------
    models:
        The registry whose *active* parser serves traffic; retrained
        candidates are published here.
    oracle:
        Where label requests go (:class:`CorpusOracle` in benchmarks,
        :class:`PendingOracle` or a human queue in production).
    replay:
        Earlier training records; fingerprint-seeds the drift detector
        as known formats and supplies the retrain replay sample.
    holdout:
        Labeled records for the activation gate.  Empty disables the
        gate (candidates activate unconditionally).
    app:
        Optional live :class:`~repro.serve.app.ServeApp`; when given,
        activation goes through ``app.swap_model``.
    gate:
        Structural admission test; records it rejects are counted as
        quarantined and never reach the drift detector.
    """

    def __init__(
        self,
        models: ModelRegistry,
        oracle: LabelOracle,
        *,
        replay: Sequence[LabeledRecord] = (),
        holdout: Sequence[LabeledRecord] = (),
        config: "MaintenanceConfig | None" = None,
        app=None,
        gate: "RecordGate | None" = None,
    ) -> None:
        """Loop over ``models`` with ``oracle`` answering label requests.

        The admission gate and drift fingerprint default from the
        registry's domain spec (char domains get a one-line gate and
        the punctuation-skeleton fingerprint); pass ``gate`` to
        override.
        """
        self.models = models
        self.oracle = oracle
        self.config = config or MaintenanceConfig()
        self.replay = list(replay)
        self.holdout = list(holdout)
        self.app = app
        spec = self._resolve_spec()
        if gate is not None:
            self.gate = gate
        elif spec is not None and spec.granularity == "char":
            # Char-granularity records are single logical lines; the
            # default 3-line truncation floor would quarantine them all.
            self.gate = RecordGate(min_lines=1)
        else:
            self.gate = RecordGate()
        detector_kwargs = {}
        if spec is not None:
            detector_kwargs["fingerprint"] = spec.fingerprint_text
        self.detector = DriftDetector(
            min_confidence=self.config.min_confidence,
            min_cluster_size=self.config.min_cluster_size,
            **detector_kwargs,
        )
        self.detector.register_known(self.replay)
        self.retrainer = WarmStartRetrainer(replay_size=self.config.replay_size)
        self.report = LoopReport()

    def _resolve_spec(self):
        """The registry's domain spec, when determinable.

        Prefers the registry's pinned domain name; falls back to the
        active parser's spec (covers ad-hoc registries).  ``None`` when
        neither is available -- the loop then keeps the line-granularity
        defaults, exactly its pre-plug-in behavior.
        """
        name = getattr(self.models, "domain", None)
        if name:
            try:
                from repro.domain import get_domain

                return get_domain(name)
            except Exception:
                pass
        try:
            if self.models.has_active:
                return self.models.current_parser.spec
        except Exception:
            pass
        return None

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------

    def observe(self, domain: str, text: str) -> "MaintenanceEvent | None":
        """Feed one served record; may trigger the full loop iteration."""
        self.report.records_seen += 1
        if self.gate.inspect_text(domain, text) is not None:
            self.report.quarantined += 1
            obs.inc("pipeline.quarantined")
            return None
        parser = self.models.current_parser
        confidences = parser.line_confidences(text)
        alert = self.detector.observe(domain, text, confidences)
        if alert is None:
            return None
        self.report.events.append(
            MaintenanceEvent(
                kind="drift_alert",
                family_id=alert.family_id,
                detail=f"{len(alert.members)} records, e.g. {alert.members[0].domain}",
            )
        )
        return self._handle_alert(alert)

    def ingest_alert(self, alert: DriftAlert) -> MaintenanceEvent:
        """Run the label -> retrain -> rollout iteration for an alert
        raised outside the loop's own confidence detector.

        This is how secondary signals -- above all the consistency
        auditor's :class:`~repro.pipeline.drift.RegistrarDisagreementSignal`
        -- enter the same maintenance path as confidence-collapse
        alerts: the alert's members carry the suspect WHOIS texts, one
        is labeled, the model is retrained and (gated on holdout)
        hot-swapped.
        """
        self.report.events.append(
            MaintenanceEvent(
                kind="drift_alert",
                family_id=alert.family_id,
                detail=(
                    f"{len(alert.members)} records, "
                    f"e.g. {alert.members[0].domain}"
                ),
            )
        )
        obs.inc("pipeline.ingested_alerts")
        return self._handle_alert(alert)

    def process(
        self, stream: Iterable["tuple[str, str] | str | LabeledRecord"]
    ) -> LoopReport:
        """Run the loop over a whole stream; items may be ``(domain,
        text)`` pairs, raw texts, or labeled records (labels ignored)."""
        for item in stream:
            if isinstance(item, tuple):
                domain, text = item
            elif isinstance(item, LabeledRecord):
                domain, text = item.domain, item.text
            else:
                domain, text = "", item
            self.observe(domain, text)
        return self.report

    # ------------------------------------------------------------------
    # One loop iteration past detection
    # ------------------------------------------------------------------

    def _handle_alert(self, alert: DriftAlert) -> MaintenanceEvent:
        current = self.models.current_parser
        _member, request = select_exemplar(current, alert)
        self.report.label_requests.append(request)
        labeled = self.oracle.label(request)
        if labeled is None:
            event = MaintenanceEvent(
                kind="label_pending",
                family_id=alert.family_id,
                detail=f"awaiting label for {request.domain}",
            )
            self.report.events.append(event)
            return event
        return self._retrain_and_rollout(alert, labeled)

    def _retrain_and_rollout(
        self, alert: DriftAlert, labeled: LabeledRecord
    ) -> MaintenanceEvent:
        current = self.models.current_parser
        error_before = self._holdout_error(current)
        # Retrain a copy: the live model keeps serving until the swap,
        # and a rejected candidate leaves no trace on it.
        candidate = copy.deepcopy(current)
        retrain = self.retrainer.retrain(
            candidate, [labeled], replay=self.replay
        )
        error_after = self._holdout_error(candidate)
        publish = self.app.swap_model if self.app is not None else (
            lambda parser, activate=True: self.models.publish(
                parser, activate=activate
            )
        )
        if (
            error_before is not None
            and error_after is not None
            and error_after - error_before > self.config.max_regression
        ):
            # Held-out accuracy regressed: publish for the audit trail
            # but do not activate -- the active pointer never moves, so
            # traffic keeps the good model (the pre-swap rollback).
            version = publish(candidate, activate=False)
            obs.inc("pipeline.rollbacks")
            event = MaintenanceEvent(
                kind="rejected",
                family_id=alert.family_id,
                version=version,
                retrain=retrain,
                detail=(
                    f"holdout line error {error_before:.5f} -> "
                    f"{error_after:.5f} exceeds tolerance"
                ),
                holdout_error_before=error_before,
                holdout_error_after=error_after,
            )
            self.report.events.append(event)
            return event
        version = publish(candidate, activate=self.config.activate)
        self.detector.resolve(alert.family_id)
        self.replay.append(labeled)
        obs.inc("pipeline.activations")
        if error_after is not None:
            obs.set_gauge("pipeline.holdout_line_error", error_after)
        event = MaintenanceEvent(
            kind="activated" if self.config.activate else "published",
            family_id=alert.family_id,
            version=version,
            retrain=retrain,
            detail=f"retrained on {labeled.domain}",
            holdout_error_before=error_before,
            holdout_error_after=error_after,
        )
        self.report.events.append(event)
        return event

    def _holdout_error(self, parser) -> "float | None":
        if not self.holdout:
            return None
        return evaluate_parser(parser, self.holdout).line_error_rate
