"""Format-drift detection over live parse confidences.

Section 5.3's maintainability claim presumes someone *notices* when a
registrar ships a new record format.  At com scale nobody eyeballs the
stream, but the parser itself emits the signal: a CRF trained without a
format hedges on it, and its posterior marginals collapse exactly where
the template is unfamiliar (the same signal the resilience layer's
``RecordGate`` uses to spot truncation).

:class:`DriftDetector` is the streaming monitor that turns that signal
into actionable *family* alerts instead of a pile of individual
low-confidence records:

1. every record is reduced to a **format fingerprint** -- the set of
   normalized field titles on its labelable lines, which is stable
   within a registrar's template and distinctive across them;
2. confident records register their fingerprints as *known formats*
   (and the detector can be pre-seeded from the training corpus);
3. low-confidence records whose fingerprint is far (low Jaccard
   similarity) from every known format are clustered with each other,
   greedily, by the same similarity; and
4. when a cluster accumulates ``min_cluster_size`` members it raises a
   :class:`DriftAlert` -- one alert per candidate schema family, not
   one per record -- carrying the members so the active-labeling stage
   can pick the single most-informative one.

Everything is observable via ``repro.obs`` under ``pipeline.drift.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.whois.records import is_labelable
from repro.whois.text import split_title_value

__all__ = [
    "DriftAlert",
    "DriftCluster",
    "DriftDetector",
    "RegistrarDisagreementSignal",
    "StreamRecord",
    "format_fingerprint",
    "jaccard",
    "shape_fingerprint",
]


def format_fingerprint(text: str) -> frozenset[str]:
    """The record's format signature: its normalized field titles.

    Lines with a title/value separator contribute the lowercased title.
    Separator-free lines (bare-value layouts) contribute their first
    word marked with ``~`` when it is purely alphabetic -- those are
    structural keywords like ``record``/``renewal``/``dns`` -- and a
    coarse shape token otherwise (``~#`` digit-led, ``~*`` mixed), so
    per-record content such as domains and street numbers does not make
    two records of the same template look different.  The *set*
    abstracts away field order and repetition, so records of the same
    template fingerprint nearly identically even with optional fields
    present or absent.
    """
    titles: set[str] = set()
    for line in text.splitlines():
        if not is_labelable(line):
            continue
        parts = split_title_value(line)
        if parts is None:
            words = line.split()
            if not words:
                continue
            first = words[0]
            if first.isalpha():
                titles.add("~" + first.lower())
            elif first[0].isdigit():
                titles.add("~#")
            else:
                titles.add("~*")
        else:
            title = " ".join(parts[0].lower().split())
            if title:
                titles.add(title)
    return frozenset(titles)


def shape_fingerprint(text: str, n: int = 4) -> frozenset[str]:
    """Format signature for char-granularity (single-line) records.

    A citation string has no field titles, but its *punctuation
    skeleton* -- where the commas, periods, quotes, and parentheses fall
    relative to words and numbers -- is exactly what distinguishes one
    style family from another.  The text is collapsed to that skeleton
    (every alphabetic run becomes ``a``, every digit run ``9``,
    whitespace runs ``_``, punctuation kept verbatim) and the set of its
    character ``n``-grams is the fingerprint.  Two records of the same
    style share most skeleton n-grams regardless of content; a new style
    with different delimiters shares few.
    """
    skeleton: list[str] = []
    prev = ""
    for ch in text:
        if ch.isalpha():
            out = "a"
        elif ch.isdigit():
            out = "9"
        elif ch.isspace():
            out = "_"
        else:
            out = ch
        if out in ("a", "9", "_") and out == prev:
            continue  # collapse runs: word/number length is content
        skeleton.append(out)
        prev = out
    s = "".join(skeleton)
    if len(s) <= n:
        return frozenset({s} if s else ())
    return frozenset(s[i : i + n] for i in range(len(s) - n + 1))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two fingerprints (empty sets are disjoint)."""
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True)
class StreamRecord:
    """One observed record with its confidence summary."""

    domain: str
    text: str
    fingerprint: frozenset[str]
    min_confidence: float
    mean_confidence: float


@dataclass
class DriftCluster:
    """A candidate new schema family accumulating low-confidence records."""

    family_id: str
    signature: frozenset[str]
    members: list[StreamRecord] = field(default_factory=list)
    alerted: bool = False
    #: detector tick (``records_seen``) when the last member arrived;
    #: the TTL eviction clock.
    last_seen: int = 0

    def add(self, record: StreamRecord) -> None:
        """Admit ``record`` and widen the cluster signature."""
        self.members.append(record)
        # Grow the signature so later records of the same template with
        # extra optional fields still match the cluster.
        self.signature = self.signature | record.fingerprint

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class DriftAlert:
    """A detected candidate schema family, raised once per cluster."""

    family_id: str
    members: tuple[StreamRecord, ...]

    @property
    def domains(self) -> tuple[str, ...]:
        """The domains of the clustered records, in arrival order."""
        return tuple(member.domain for member in self.members)


class DriftDetector:
    """Streaming monitor clustering low-confidence records into families.

    Parameters
    ----------
    min_confidence:
        Records whose least-confident line's posterior is below this are
        drift *candidates*; above it they are treated as handled and
        their fingerprint becomes a known format.
    min_cluster_size:
        Members a cluster needs before it raises a :class:`DriftAlert`.
        One garbled record is noise; several sharing a fingerprint are a
        format.
    known_threshold:
        A candidate whose fingerprint has Jaccard similarity >= this to
        any known format is attributed to that format (a hard record,
        not a new family) and not clustered.
    merge_threshold:
        Candidates join the best existing cluster with similarity >=
        this; otherwise they found a new cluster.
    max_open_clusters:
        Hard cap on simultaneously open clusters.  Beyond it the
        longest-idle cluster is evicted -- a detector watching a 102M
        record stream must hold bounded state no matter how much noise
        the tail of the zone throws at it.
    cluster_ttl:
        Records-seen ticks a cluster may sit without gaining a member
        before it is evicted (``None`` disables the TTL).  One-off
        garbage fingerprints stop accumulating forever.
    max_resolved:
        Most-recent resolved-family signatures retained for straggler
        attribution; older ones age out first.
    fingerprint:
        ``text -> frozenset`` reduction used for every record; defaults
        to :func:`format_fingerprint` (field titles).  Char-granularity
        domains pass :func:`shape_fingerprint` (or a domain-specific
        hook via :meth:`DomainSpec.fingerprint_text
        <repro.domain.DomainSpec.fingerprint_text>`), since single-line
        records have no field titles to fingerprint on.
    """

    def __init__(
        self,
        *,
        min_confidence: float = 0.90,
        min_cluster_size: int = 3,
        known_threshold: float = 0.6,
        merge_threshold: float = 0.4,
        max_open_clusters: int = 64,
        cluster_ttl: "int | None" = 20_000,
        max_resolved: int = 512,
        fingerprint=format_fingerprint,
    ) -> None:
        """Detector with clustering thresholds and a fingerprint hook.

        ``fingerprint`` maps record text to the comparable
        frozenset the Jaccard clustering runs on --
        :func:`format_fingerprint` (field titles; the line-domain
        default) or :func:`shape_fingerprint` (punctuation skeleton,
        for char-grained single-line domains).
        """
        self.fingerprint = fingerprint
        self.min_confidence = min_confidence
        self.min_cluster_size = min_cluster_size
        self.known_threshold = known_threshold
        self.merge_threshold = merge_threshold
        self.max_open_clusters = max(1, max_open_clusters)
        self.cluster_ttl = cluster_ttl
        self.max_resolved = max(0, max_resolved)
        self._known: list[frozenset[str]] = []
        self._resolved: list[frozenset[str]] = []
        self.clusters: list[DriftCluster] = []
        self._next_family = 1
        self.records_seen = 0
        self.low_confidence = 0
        self.evicted_clusters = 0

    # ------------------------------------------------------------------
    # Known formats
    # ------------------------------------------------------------------

    def register_known(self, texts) -> int:
        """Seed known formats from record texts (e.g. the training corpus).

        Accepts raw strings or anything with a ``text`` attribute
        (:class:`~repro.whois.records.LabeledRecord`).  Returns how many
        *distinct* fingerprints are now known.
        """
        for item in texts:
            text = item if isinstance(item, str) else item.text
            self._learn(self.fingerprint(text))
        return len(self._known)

    def _learn(self, fingerprint: frozenset[str]) -> None:
        if fingerprint and not any(
            jaccard(fingerprint, known) >= self.known_threshold
            for known in self._known
        ):
            self._known.append(fingerprint)

    def _is_known(self, fingerprint: frozenset[str]) -> bool:
        # Resolved families are matched at the *merge* threshold, the
        # same similarity that clustered their members in the first
        # place -- a straggler that would have joined the cluster must
        # be attributed to the (now retrained) family, not start a new
        # one.
        return any(
            jaccard(fingerprint, known) >= self.known_threshold
            for known in self._known
        ) or any(
            jaccard(fingerprint, signature) >= self.merge_threshold
            for signature in self._resolved
        )

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------

    def observe(
        self,
        domain: str,
        text: str,
        confidences: "list[tuple[str, str, float]]",
    ) -> DriftAlert | None:
        """Feed one parsed record; returns an alert when a cluster matures.

        ``confidences`` is the parser's ``line_confidences`` output:
        ``(line, predicted block, posterior)`` triples.
        """
        self.records_seen += 1
        obs.inc("pipeline.drift.records_seen")
        if not confidences:
            return None
        probs = [p for _, _, p in confidences]
        minimum = min(probs)
        fingerprint = self.fingerprint(text)
        if minimum >= self.min_confidence:
            # Served confidently: whatever format this is, the model
            # knows it.  Remember the fingerprint so stragglers with the
            # same shape are attributed here rather than clustered.
            self._learn(fingerprint)
            return None
        self.low_confidence += 1
        obs.inc("pipeline.drift.low_confidence")
        if self._is_known(fingerprint):
            # A known format parsed badly -- damage or a hard record,
            # the quarantine/active-learning path, not schema drift.
            obs.inc("pipeline.drift.known_format_outliers")
            return None
        record = StreamRecord(
            domain=domain,
            text=text,
            fingerprint=fingerprint,
            min_confidence=minimum,
            mean_confidence=sum(probs) / len(probs),
        )
        cluster = self._assign(record)
        cluster.last_seen = self.records_seen
        self._evict()
        obs.set_gauge("pipeline.drift.open_clusters", len(self.clusters))
        if not cluster.alerted and len(cluster) >= self.min_cluster_size:
            cluster.alerted = True
            obs.inc("pipeline.drift.alerts")
            return DriftAlert(
                family_id=cluster.family_id, members=tuple(cluster.members)
            )
        return None

    def _evict(self) -> None:
        """Bound detector state: drop idle clusters, then enforce the cap.

        A stream of one-off garbage fingerprints would otherwise grow
        ``clusters`` without limit -- each founds a singleton cluster
        that never matures.  Eviction forgets candidates, never formats:
        a real emerging family re-clusters from its next records.
        """
        if self.cluster_ttl is not None:
            stale = [
                cluster for cluster in self.clusters
                if self.records_seen - cluster.last_seen > self.cluster_ttl
            ]
            for cluster in stale:
                self.clusters.remove(cluster)
                self.evicted_clusters += 1
                obs.inc("pipeline.drift.evicted_clusters", reason="ttl")
        while len(self.clusters) > self.max_open_clusters:
            idlest = min(self.clusters, key=lambda cluster: cluster.last_seen)
            self.clusters.remove(idlest)
            self.evicted_clusters += 1
            obs.inc("pipeline.drift.evicted_clusters", reason="capacity")

    def _assign(self, record: StreamRecord) -> DriftCluster:
        best: DriftCluster | None = None
        best_similarity = 0.0
        for cluster in self.clusters:
            similarity = jaccard(record.fingerprint, cluster.signature)
            if similarity > best_similarity:
                best, best_similarity = cluster, similarity
        if best is not None and best_similarity >= self.merge_threshold:
            best.add(record)
            return best
        cluster = DriftCluster(
            family_id=f"family-{self._next_family:03d}",
            signature=record.fingerprint,
        )
        self._next_family += 1
        cluster.add(record)
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def resolve(self, family_id: str) -> None:
        """Close a cluster after its family was labeled and retrained;
        its signature becomes a known format.

        Member fingerprints are registered individually as well as the
        union signature: bare-value layouts carry some per-record tokens
        even after shape normalization, and a straggler matches a
        sibling record more closely than the token-diluted union.
        """
        for cluster in list(self.clusters):
            if cluster.family_id == family_id:
                self._resolved.append(cluster.signature)
                for member in cluster.members:
                    self._resolved.append(member.fingerprint)
                self.clusters.remove(cluster)
        if len(self._resolved) > self.max_resolved:
            dropped = len(self._resolved) - self.max_resolved
            del self._resolved[:dropped]
            obs.inc("pipeline.drift.evicted_resolved", dropped)


@dataclass
class _RegistrarTally:
    """Running audit verdicts for one registrar."""

    audited: int = 0
    disagreeing: int = 0
    exemplars: list[StreamRecord] = field(default_factory=list)
    alerted: bool = False

    @property
    def rate(self) -> float:
        return self.disagreeing / self.audited if self.audited else 0.0


class RegistrarDisagreementSignal:
    """Cross-protocol disagreement as a second drift signal.

    The :class:`DriftDetector` hears a new format as collapsed parser
    confidence; this signal hears it as the registrar's own RDAP service
    contradicting the WHOIS parse.  A registrar whose port-43 template
    changed still *serves* -- the parser may even stay confident while
    silently mis-assembling fields -- but the diff against RDAP (whose
    structured JSON needs no parsing) disagrees systematically.

    Feed it the per-domain :class:`~repro.consistency.AuditRecord`
    verdicts alongside the raw WHOIS texts; once a registrar's
    disagreement rate over definite verdicts reaches ``rate_threshold``
    with at least ``min_audits`` audits, it raises one standard
    :class:`DriftAlert` whose members are the disagreeing domains'
    records -- directly consumable by
    :meth:`~repro.pipeline.loop.MaintenanceLoop.ingest_alert`, entering
    the same label -> retrain -> hot-swap iteration as a confidence
    alert.
    """

    def __init__(
        self,
        *,
        rate_threshold: float = 0.5,
        min_audits: int = 10,
        max_exemplars: int = 8,
    ) -> None:
        """Signal with per-registrar disagreement-rate thresholds."""
        self.rate_threshold = rate_threshold
        self.min_audits = max(1, min_audits)
        self.max_exemplars = max(1, max_exemplars)
        self._tallies: "dict[str | None, _RegistrarTally]" = {}

    def observe(self, audit, text: str) -> "DriftAlert | None":
        """Feed one audit verdict with its WHOIS text; maybe alert.

        Incomparable verdicts carry no evidence either way and are
        ignored.  Each registrar alerts at most once per signal
        lifetime (reset via :meth:`resolve`).
        """
        if audit.verdict not in ("agree", "disagree"):
            return None
        tally = self._tallies.setdefault(audit.registrar, _RegistrarTally())
        tally.audited += 1
        if audit.verdict == "disagree":
            tally.disagreeing += 1
            if len(tally.exemplars) < self.max_exemplars:
                tally.exemplars.append(StreamRecord(
                    domain=audit.domain,
                    text=text,
                    fingerprint=format_fingerprint(text),
                    min_confidence=0.0,
                    mean_confidence=0.0,
                ))
        obs.set_gauge(
            "pipeline.drift.registrar_disagreement_rate",
            tally.rate,
            registrar=str(audit.registrar),
        )
        if (
            not tally.alerted
            and tally.audited >= self.min_audits
            and tally.rate >= self.rate_threshold
            and tally.exemplars
        ):
            tally.alerted = True
            obs.inc("pipeline.drift.registrar_disagreement_alerts")
            return DriftAlert(
                family_id=self._family_id(audit.registrar),
                members=tuple(tally.exemplars),
            )
        return None

    def scan(self, audits, text_for) -> "list[DriftAlert]":
        """Run a finished audit table through the signal in one pass.

        ``text_for`` maps a domain to its WHOIS text (a dict's ``get``
        over the crawl, or a store lookup); audits whose text is missing
        are skipped.
        """
        alerts = []
        for audit in audits:
            text = text_for(audit.domain)
            if text is None:
                continue
            alert = self.observe(audit, text)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def rates(self) -> "dict[str | None, float]":
        """Current per-registrar disagreement rates (definite verdicts)."""
        return {name: tally.rate for name, tally in self._tallies.items()}

    def resolve(self, family_id: str) -> None:
        """Forget a registrar's tally after its alert was acted on, so
        post-retrain audits judge the new model from scratch."""
        for name in list(self._tallies):
            if self._family_id(name) == family_id:
                del self._tallies[name]

    @staticmethod
    def _family_id(registrar: "str | None") -> str:
        slug = (registrar or "unattributed").lower().replace(" ", "-")
        return f"registrar-disagreement:{slug}"
