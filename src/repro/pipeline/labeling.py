"""Active label selection and labeling oracles for the maintenance loop.

The paper's §5.3 cost model is "one labeled example per new format".
When the drift detector raises a family alert, this module decides
*which* record in the cluster earns that one label (the most-informative
member under the current model, via :mod:`repro.parser.active`) and
obtains the label from a :class:`LabelOracle`:

- in production the oracle is a human queue -- :class:`PendingOracle`
  models that by answering ``None`` and accumulating requests;
- in benchmarks and tests ground truth is known, so
  :class:`CorpusOracle` answers from a labeled corpus keyed by domain
  (the ``repro.datagen`` truth, or any labeled JSONL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro import obs
from repro.parser.active import most_informative
from repro.parser.statistical import WhoisParser
from repro.pipeline.drift import DriftAlert, StreamRecord
from repro.whois.records import LabeledRecord

__all__ = [
    "CorpusOracle",
    "LabelOracle",
    "LabelRequest",
    "PendingOracle",
    "select_exemplar",
]


@dataclass(frozen=True)
class LabelRequest:
    """One record chosen for labeling, tagged with its candidate family."""

    family_id: str
    domain: str
    text: str
    min_confidence: float


class LabelOracle(Protocol):
    """Anything that can turn a label request into a labeled record."""

    def label(self, request: LabelRequest) -> LabeledRecord | None:
        """The ground-truth record, or None when labeling is deferred."""
        ...


class CorpusOracle:
    """Answers label requests from a labeled corpus, keyed by domain.

    This is the benchmark-mode oracle: the synthetic substrate knows the
    true labels of every record it rendered, so the maintenance loop can
    run closed-loop with zero humans while still paying the honest price
    (exactly the requested labels, nothing more).
    """

    def __init__(self, records: Iterable[LabeledRecord]) -> None:
        """Oracle answering from ``records``, keyed by domain."""
        self._by_domain = {
            record.domain.lower(): record for record in records
        }
        self.served: list[LabelRequest] = []

    def __len__(self) -> int:
        return len(self._by_domain)

    def add(self, record: LabeledRecord) -> None:
        """Make one more labeled record answerable."""
        self._by_domain[record.domain.lower()] = record

    def label(self, request: LabelRequest) -> LabeledRecord | None:
        """Answer from the corpus; served requests are recorded."""
        record = self._by_domain.get(request.domain.lower())
        if record is not None:
            self.served.append(request)
        return record


class PendingOracle:
    """The human-queue oracle: never answers, remembers what was asked.

    ``pending`` is the labeling backlog an operator would work through;
    the loop emits one entry per detected family, which is the paper's
    claimed maintenance cost made inspectable.
    """

    def __init__(self) -> None:
        self.pending: list[LabelRequest] = []

    def label(self, request: LabelRequest) -> LabeledRecord | None:
        """Queue the request for a human; always returns None."""
        self.pending.append(request)
        return None


def select_exemplar(
    parser: WhoisParser, alert: DriftAlert
) -> "tuple[StreamRecord, LabelRequest]":
    """Pick the cluster member whose label teaches the model the most.

    Re-ranks the cluster under the *current* model (confidences recorded
    at observation time may predate a retrain) and returns the chosen
    member plus the :class:`LabelRequest` describing it.
    """
    texts = [member.text for member in alert.members]
    index = most_informative(parser, texts)
    member = alert.members[index if index is not None else 0]
    obs.inc("pipeline.labels_requested", family=alert.family_id)
    return member, LabelRequest(
        family_id=alert.family_id,
        domain=member.domain,
        text=member.text,
        min_confidence=member.min_confidence,
    )
