"""Continuous parser maintenance: the paper's §5.3 loop as a subsystem.

The WHOIS ecosystem does not stand still -- registrars redesign record
layouts, new registrars appear, and a parser trained once decays.  The
paper's answer (§5.3) is that the CRF parser is cheap to *maintain*: new
formats are detectable from the model's own confidence, and one labeled
example per format restores accuracy.  This package operationalizes that
claim as a closed loop:

``drift``
    streaming detector clustering low-confidence records into candidate
    schema families (format fingerprints + Jaccard similarity);
``labeling``
    active selection of the single most-informative record per family,
    plus oracles that answer label requests (corpus-backed for
    benchmarks, pending-queue for humans);
``retrain``
    warm-start incremental retraining with crash-safe
    checkpoint/resume;
``loop``
    :class:`MaintenanceLoop` gluing the stages together with a
    holdout-gated rollout into the serving registry (hot-swap on
    success, rollback-by-not-activating on regression).

``benchmarks/bench_maintainability_loop.py`` runs the whole loop against
an unseen synthetic schema family; ``python -m repro maintain`` drives
it from the command line.
"""

from repro.pipeline.drift import (
    DriftAlert,
    DriftCluster,
    DriftDetector,
    RegistrarDisagreementSignal,
    StreamRecord,
    format_fingerprint,
    jaccard,
)
from repro.pipeline.labeling import (
    CorpusOracle,
    LabelOracle,
    LabelRequest,
    PendingOracle,
    select_exemplar,
)
from repro.pipeline.loop import (
    LoopReport,
    MaintenanceConfig,
    MaintenanceEvent,
    MaintenanceLoop,
)
from repro.pipeline.retrain import RetrainReport, WarmStartRetrainer

__all__ = [
    "CorpusOracle",
    "DriftAlert",
    "DriftCluster",
    "DriftDetector",
    "LabelOracle",
    "LabelRequest",
    "LoopReport",
    "MaintenanceConfig",
    "MaintenanceEvent",
    "MaintenanceLoop",
    "PendingOracle",
    "RegistrarDisagreementSignal",
    "RetrainReport",
    "StreamRecord",
    "WarmStartRetrainer",
    "format_fingerprint",
    "jaccard",
    "select_exemplar",
]
