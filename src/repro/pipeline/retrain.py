"""Warm-start incremental retraining with on-disk checkpoints.

The §5.3 economics only work if retraining on "corpus + one labeled
example" costs a fraction of training from scratch.  Two mechanisms in
:mod:`repro.crf.train` deliver that, and this module packages them for
the maintenance loop:

- **warm start** -- ``WhoisParser.partial_fit`` keeps the fitted weights
  and continues optimization on the new example plus a small replay
  sample, so the optimizer starts next to the solution instead of at
  zero (``benchmarks/bench_maintainability_loop.py`` measures the
  speedup over a cold refit of the enlarged corpus);
- **checkpoint/resume** -- the trainers snapshot resumable
  :class:`~repro.crf.train.TrainerState` objects mid-run;
  :class:`WarmStartRetrainer` persists them under ``checkpoint_dir`` so
  a retrain killed mid-flight loses at most ``checkpoint_every``
  optimizer iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Sequence

from repro import obs
from repro.crf.train import TrainerState
from repro.parser.statistical import WhoisParser
from repro.whois.records import LabeledRecord

__all__ = ["RetrainReport", "WarmStartRetrainer"]

_CHECKPOINT = "retrain-block.npz"


@dataclass(frozen=True)
class RetrainReport:
    """Accounting for one retraining run (warm or cold)."""

    warm: bool
    n_new: int
    n_replay: int
    seconds: float
    #: objective evaluations the first-level trainer spent
    block_evaluations: int
    converged: bool


class WarmStartRetrainer:
    """Retrains a parser on newly labeled records, warm and checkpointed.

    Parameters
    ----------
    replay_size:
        How many earlier training records to mix in so the enlarged
        model does not forget the original formats (the replay sample is
        taken from the front of the ``replay`` sequence passed to
        :meth:`retrain`).
    checkpoint_dir:
        Directory for mid-retrain :class:`TrainerState` snapshots; None
        disables checkpointing.
    checkpoint_every:
        Optimizer iterations between snapshots.
    """

    def __init__(
        self,
        *,
        replay_size: int = 50,
        checkpoint_dir: "str | Path | None" = None,
        checkpoint_every: int = 10,
    ) -> None:
        """Retrainer with replay-sample size and checkpoint cadence."""
        self.replay_size = replay_size
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    @property
    def checkpoint_path(self) -> "Path | None":
        """Where mid-retrain snapshots land (None: disabled)."""
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / _CHECKPOINT

    def latest_checkpoint(self) -> "TrainerState | None":
        """The last snapshot a killed retrain left behind, if any."""
        path = self.checkpoint_path
        if path is None or not path.exists():
            return None
        return TrainerState.load(path)

    def _on_checkpoint(self, state: TrainerState) -> None:
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        state.save(self.checkpoint_path)
        obs.inc("pipeline.retrain.checkpoints")

    def _clear_checkpoint(self) -> None:
        path = self.checkpoint_path
        if path is not None and path.exists():
            path.unlink()

    # ------------------------------------------------------------------
    # Retraining
    # ------------------------------------------------------------------

    def retrain(
        self,
        parser: WhoisParser,
        new_records: Sequence[LabeledRecord],
        *,
        replay: Sequence[LabeledRecord] = (),
    ) -> RetrainReport:
        """Warm-start ``parser`` on ``new_records`` (+ replay), in place.

        The caller decides whether ``parser`` is the live model or a
        copy (the maintenance loop retrains a copy so the swap stays an
        atomic, rollback-able registry operation).  A completed run
        clears any stale checkpoint.
        """
        replay_sample = list(replay)[: self.replay_size]
        resume = self.latest_checkpoint()
        kwargs = dict(
            replay=replay_sample,
            checkpoint_every=(
                self.checkpoint_every if self.checkpoint_dir else 0
            ),
            on_checkpoint=(
                self._on_checkpoint if self.checkpoint_dir else None
            ),
        )
        started = perf_counter()
        with obs.trace("pipeline.retrain_seconds", mode="warm"):
            try:
                parser.partial_fit(list(new_records), resume=resume, **kwargs)
            except ValueError:
                if resume is None:
                    raise
                # A stale checkpoint from a different retrain (wrong
                # parameter dimensionality): discard it and start warm
                # from the parser's own weights.  Index extension is
                # idempotent, so the retry is safe.
                self._clear_checkpoint()
                parser.partial_fit(list(new_records), **kwargs)
        self._clear_checkpoint()
        log = parser.block_crf.train_log
        report = RetrainReport(
            warm=True,
            n_new=len(new_records),
            n_replay=len(replay_sample),
            seconds=perf_counter() - started,
            block_evaluations=log.n_iterations if log is not None else 0,
            converged=bool(log.converged) if log is not None else False,
        )
        obs.inc("pipeline.retrains")
        return report

    @staticmethod
    def cold_retrain(
        template: WhoisParser,
        corpus: Sequence[LabeledRecord],
    ) -> "tuple[WhoisParser, RetrainReport]":
        """Train a fresh parser from scratch on the full enlarged corpus.

        The baseline the warm path is measured against: same final
        training set, optimizer started from zero.  ``template`` only
        supplies the hyper-parameters (a new parser is constructed with
        the same CRF settings and featurizer configuration).
        """
        fresh = WhoisParser(
            featurizer_config=template.featurizer.config,
            **{
                key: template._crf_kwargs[key]
                for key in ("l2", "min_count", "trainer", "max_iterations", "seed")
            },
            second_level=template.registrant_crf is not None,
        )
        started = perf_counter()
        with obs.trace("pipeline.retrain_seconds", mode="cold"):
            fresh.fit(list(corpus))
        log = fresh.block_crf.train_log
        return fresh, RetrainReport(
            warm=False,
            n_new=len(corpus),
            n_replay=0,
            seconds=perf_counter() - started,
            block_evaluations=log.n_iterations if log is not None else 0,
            converged=bool(log.converged) if log is not None else False,
        )
