"""WHOIS records and their line-granularity labeling.

Following Section 3 of the paper, a record is chunked into its individual
lines of text; every line containing at least one alphanumeric character is
*labelable* and carries exactly one block label (and, inside registrant
blocks, one sub-field label).  Empty lines and pure-punctuation lines carry
no label but still matter: they generate the ``NL``/``SYM`` context markers
used by the featurizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


def is_labelable(line: str) -> bool:
    """True if the line contains an alphanumeric character (Section 3.1)."""
    # An explicit loop: this runs once per line of every parsed record,
    # and a generator expression costs a frame per call.
    for ch in line:
        if ch.isalnum():
            return True
    return False


def segment_chars(text: str) -> list[str]:
    """Segment a record with no line structure into character units.

    The char-granularity counterpart of ``splitlines()``: whitespace
    runs (including newlines) collapse to a single space and the ends
    are stripped, then every remaining character -- spaces and
    punctuation included -- is one labelable unit.  Keeping delimiters
    labelable is what lets field values reassemble exactly (a DOI's
    dots, a page range's dash); under line granularity they would have
    been filtered as non-labelable and lost.
    """
    return list(" ".join(text.split()))


def labelable_units(raw_lines: list[str], granularity: str) -> list[str]:
    """The units of ``raw_lines`` that carry labels, per granularity.

    Every character is labelable under ``"char"`` granularity; under
    ``"line"`` only lines passing :func:`is_labelable` are.
    """
    if granularity == "char":
        return list(raw_lines)
    return [ln for ln in raw_lines if is_labelable(ln)]


@dataclass(frozen=True)
class WhoisRecord:
    """A raw (unlabeled) WHOIS response for one domain."""

    domain: str
    text: str

    @property
    def lines(self) -> list[str]:
        """The raw text split into lines (labelable or not)."""
        return self.text.splitlines()

    def labelable_lines(self) -> list[tuple[int, str]]:
        """The (raw-index, text) pairs of lines that receive labels."""
        return [(i, ln) for i, ln in enumerate(self.lines) if is_labelable(ln)]

    def __len__(self) -> int:
        return len(self.labelable_lines())


@dataclass(frozen=True)
class LabeledLine:
    """One labelable line with its ground-truth (or predicted) labels."""

    text: str
    block: str
    sub: str | None = None


@dataclass
class LabeledRecord:
    """A WHOIS record whose labelable lines all carry labels.

    ``raw_lines`` preserves the record verbatim, including blank and
    symbol-only separator lines, so featurization context is intact;
    ``lines`` holds one :class:`LabeledLine` per labelable raw line, in
    order.
    """

    domain: str
    raw_lines: list[str]
    lines: list[LabeledLine]
    tld: str = field(default="com")
    registrar: str | None = None
    schema_family: str | None = None
    #: labeling unit: "line" (the WHOIS default) or "char" (each
    #: ``raw_lines`` entry is one character of a line-structure-free
    #: record; see :func:`segment_chars`)
    granularity: str = "line"

    def __post_init__(self) -> None:
        labelable = labelable_units(self.raw_lines, self.granularity)
        if len(labelable) != len(self.lines):
            raise ValueError(
                f"{self.domain}: {len(labelable)} labelable raw units but "
                f"{len(self.lines)} labeled units"
            )
        for raw, labeled in zip(labelable, self.lines):
            if raw != labeled.text:
                raise ValueError(
                    f"{self.domain}: labeled unit {labeled.text!r} does not "
                    f"match raw unit {raw!r}"
                )

    def iter_labelable_raw(self) -> Iterator[str]:
        """The raw units that carry labels, in order."""
        return iter(labelable_units(self.raw_lines, self.granularity))

    @property
    def text(self) -> str:
        """The verbatim record text (what a crawler would have fetched).

        Char-granularity units concatenate back without separators --
        the record never had line structure to restore.
        """
        if self.granularity == "char":
            return "".join(self.raw_lines)
        return "\n".join(self.raw_lines)

    @property
    def block_labels(self) -> list[str]:
        """Gold first-level label per labelable line."""
        return [line.block for line in self.lines]

    @property
    def sub_labels(self) -> list[str | None]:
        """Gold second-level label per labelable line (None outside it)."""
        return [line.sub for line in self.lines]

    def to_record(self) -> WhoisRecord:
        """Strip the labels, leaving the raw record."""
        return WhoisRecord(domain=self.domain, text=self.text)

    def registrant_lines(self) -> list[LabeledLine]:
        """The labeled lines of the registrant block (second-level data)."""
        return [line for line in self.lines if line.block == "registrant"]

    def __len__(self) -> int:
        return len(self.lines)
