"""JSONL persistence for labeled WHOIS corpora.

The paper released its code and data; this module is the data half: labeled
records serialize to one JSON object per line, so corpora can be shipped,
diffed, and re-labeled with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.whois.records import LabeledLine, LabeledRecord


def record_to_dict(record: LabeledRecord) -> dict:
    """One JSONL row: raw lines plus aligned (block, sub) label pairs.

    The ``granularity`` key only appears for non-default (character)
    records, so line-granularity corpora serialize byte-identically to
    what they did before granularity existed.
    """
    row = {
        "domain": record.domain,
        "tld": record.tld,
        "registrar": record.registrar,
        "schema_family": record.schema_family,
        "raw_lines": record.raw_lines,
        "labels": [
            {"block": line.block, "sub": line.sub} for line in record.lines
        ],
    }
    if record.granularity != "line":
        row["granularity"] = record.granularity
    return row


def record_from_dict(data: dict) -> LabeledRecord:
    """Rebuild a :class:`LabeledRecord` from its JSONL row (validated)."""
    from repro.whois.records import labelable_units

    granularity = data.get("granularity", "line")
    labelable = labelable_units(data["raw_lines"], granularity)
    labels = data["labels"]
    if len(labelable) != len(labels):
        raise ValueError(
            f"{data.get('domain')}: {len(labels)} labels for "
            f"{len(labelable)} labelable units"
        )
    lines = [
        LabeledLine(text=text, block=label["block"], sub=label.get("sub"))
        for text, label in zip(labelable, labels)
    ]
    return LabeledRecord(
        domain=data["domain"],
        raw_lines=list(data["raw_lines"]),
        lines=lines,
        tld=data.get("tld", "com"),
        registrar=data.get("registrar"),
        schema_family=data.get("schema_family"),
        granularity=granularity,
    )


def save_corpus(records: Iterable[LabeledRecord], path: str | Path) -> int:
    """Write records as JSONL; returns the number written."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def load_corpus(path: str | Path) -> list[LabeledRecord]:
    """Materialize a whole JSONL corpus (see :func:`iter_corpus`)."""
    return list(iter_corpus(path))


def iter_corpus(path: str | Path) -> Iterator[LabeledRecord]:
    """Stream labeled records from a JSONL file, skipping blank lines."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield record_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed corpus line ({exc})"
                ) from exc
