"""Low-level text analysis for WHOIS lines (Section 3.3).

The paper's features are built from three kinds of signal on each line:

- a *separator* (colon, tab, or a run of dots) splitting the line into a
  field title and a field value (``Registrant Name: John Smith``);
- layout markers (``NL`` for preceding blank lines, ``SHL``/``SHR`` for
  indentation shifts, ``SYM`` for lines starting with symbols like # or %);
- word classes capturing the *shape* of text (five-digit numbers that look
  like U.S. ZIP codes, email addresses, phone numbers, URLs, dates, ...).
"""

from __future__ import annotations

import re

# A separator is the first of: a colon, a tab, or a dot-leader (two or more
# consecutive periods, as in "Created on....: 1997-01-01").  The colon form
# requires either a following space/EOL or a short title prefix, so times
# ("12:30:00") and URLs ("http://") inside values don't get split.
_DOT_LEADER = re.compile(r"\.{2,}:?")
_WORD = re.compile(r"[a-z0-9]+")
_EMAIL = re.compile(r"[\w.+-]+@[\w-]+(\.[\w-]+)+", re.UNICODE)
_URL = re.compile(r"(https?://|www\.)\S+", re.IGNORECASE)
_FIVE_DIGIT = re.compile(r"(?<!\d)\d{5}(?!\d)")
_PHONE = re.compile(r"\+?\d[\d\s().-]{6,}\d")
_DATE = re.compile(
    r"(\d{4}[-/.]\d{1,2}[-/.]\d{1,2})|(\d{1,2}[-/.]\d{1,2}[-/.]\d{4})"
    r"|(\d{1,2}-[a-z]{3}-\d{4})",
    re.IGNORECASE,
)
_IPV4 = re.compile(r"(?<!\d)(\d{1,3}\.){3}\d{1,3}(?!\d)")
_DOMAIN = re.compile(
    r"(?<![\w.-])([a-z0-9-]+\.)+(com|net|org|info|biz|io|co|us|uk|cn|jp|de|fr)"
    r"(?![\w-])",
    re.IGNORECASE,
)
_POSTCODE_ALNUM = re.compile(
    r"(?<![\w])([A-Z]{1,2}\d{1,2}[A-Z]?\s?\d[A-Z]{2}|\d{3}-\d{4})(?![\w])"
)

#: gazetteer of country spellings seen in WHOIS records, for the
#: ``CLS:country`` shape feature (a "more general class of words", eq. (7));
#: needed because some templates repeat one field title for every address
#: line and only the content identifies the country line.
_COUNTRY_GAZETTEER: frozenset[str] = frozenset({
    "united states", "united states of america", "usa", "u.s.a.",
    "china", "p.r. china", "united kingdom", "uk", "great britain",
    "germany", "deutschland", "france", "canada", "spain", "espana",
    "australia", "japan", "india", "turkey", "turkiye", "vietnam",
    "viet nam", "russia", "russian federation", "hong kong",
    "netherlands", "the netherlands", "italy", "italia", "brazil",
    "brasil", "south korea", "korea", "republic of korea", "sweden",
    "poland", "polska", "mexico", "switzerland", "denmark", "norway",
    "israel",
    # ISO alpha-2 codes are only matched against a line's *entire* value,
    # so short common words cannot collide.
    "us", "cn", "gb", "de", "fr", "ca", "es", "au", "jp", "in", "tr",
    "vn", "ru", "hk", "nl", "it", "br", "kr", "se", "pl", "mx", "ch",
    "dk", "no", "il",
})


def split_title_value(line: str) -> tuple[str, str, str] | None:
    """Split a line at its first separator into ``(title, value, separator)``.

    Returns ``None`` when no separator is found, in which case every word on
    the line is treated as a value word (suffix ``@V``).
    """
    candidates: list[tuple[int, int, str]] = []  # (position, end, kind)
    tab = line.find("\t")
    if tab != -1:
        candidates.append((tab, tab + 1, "tab"))
    dots = _DOT_LEADER.search(line)
    if dots is not None:
        candidates.append((dots.start(), dots.end(), "dots"))
    colon = _find_colon(line)
    if colon is not None:
        candidates.append((colon, colon + 1, "colon"))
    if not candidates:
        return None
    pos, end, _kind = min(candidates)
    return line[:pos], line[end:], _kind


def _find_colon(line: str) -> int | None:
    """Position of the first title-delimiting colon, skipping URL/time colons."""
    for match in re.finditer(":", line):
        i = match.start()
        rest = line[i + 1 :]
        if rest.startswith("//"):  # http:// inside a value
            continue
        if i + 1 < len(line) and line[i + 1].isdigit() and i > 0 and line[i - 1].isdigit():
            continue  # 12:30:00 timestamps
        return i
    return None


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric words, the paper's dictionary units."""
    return _WORD.findall(text.lower())


def indentation(line: str) -> int:
    """Width of the leading whitespace (tabs count as 4 columns)."""
    width = 0
    for ch in line:
        if ch == " ":
            width += 1
        elif ch == "\t":
            width += 4
        else:
            break
    return width


def detect_symbol_start(line: str) -> bool:
    """True when the first non-space character is a symbol such as # or %."""
    stripped = line.lstrip()
    if not stripped:
        return False
    first = stripped[0]
    return not (first.isalnum() or first in "\"'([{<")


def word_classes(text: str) -> list[str]:
    """Shape features of the form in eq. (7): the classes of text present.

    Class names carry a ``CLS:`` prefix so they can never collide with
    dictionary words.
    """
    classes: list[str] = []
    if _EMAIL.search(text):
        classes.append("CLS:email")
    if _URL.search(text):
        classes.append("CLS:url")
    if _FIVE_DIGIT.search(text):
        classes.append("CLS:fivedigit")
    if _DATE.search(text):
        classes.append("CLS:date")
    if _IPV4.search(text):
        classes.append("CLS:ipv4")
    if _PHONE.search(text):
        classes.append("CLS:phone")
    if _DOMAIN.search(text):
        classes.append("CLS:domain")
    if _POSTCODE_ALNUM.search(text):
        classes.append("CLS:postcode")
    if text.strip().strip(".").lower() in _COUNTRY_GAZETTEER:
        classes.append("CLS:country")
    letters = [ch for ch in text if ch.isalpha()]
    if letters and all(ch.isupper() for ch in letters):
        classes.append("CLS:allcaps")
    if any(ch.isdigit() for ch in text):
        classes.append("CLS:hasdigit")
    if not any(ch.isdigit() for ch in text) and letters:
        classes.append("CLS:alpha")
    return classes
