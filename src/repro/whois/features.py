"""Featurization of WHOIS records into CRF attribute sequences (Section 3.3).

:class:`WhoisFeaturizer` turns the labelable lines of a record into a
:class:`repro.crf.Sequence` whose attributes reproduce the paper's feature
families:

- dictionary words suffixed ``@T`` (left of the first separator) or ``@V``
  (right of it, or the whole line when no separator exists);
- the ``SEP`` marker and its kind when a separator is present;
- layout markers ``NL`` (preceded by one or more blank lines), ``SHL`` /
  ``SHR`` (indentation shift left/right relative to the previous labelable
  line) and ``SYM`` (line begins with a symbol such as ``#`` or ``%``);
- word-class attributes (``CLS:fivedigit``, ``CLS:email``, ...) as in
  eq. (7).

Observation attributes feed features of the forms in eqs. (6)-(7);
the *edge* attributes (markers plus title words) feed the
transition-detecting features of eq. (8) that Figure 1 visualizes.
Every family can be disabled independently for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crf.features import Sequence
from repro.whois.lexicon import Lexicon
from repro.whois.records import WhoisRecord, is_labelable
from repro.whois.text import (
    detect_symbol_start,
    indentation,
    split_title_value,
    tokenize,
    word_classes,
)


@dataclass(frozen=True)
class FeaturizerConfig:
    """Switches for the feature families (used by the ablation study).

    ``granularity`` selects what one CRF token *is*: ``"line"`` (the
    paper's WHOIS setup -- each labelable line is one token) or
    ``"char"`` (each character of a normalized single-line record is
    one token, for domains with no line structure such as citation
    strings).  It travels inside model snapshots with the rest of the
    configuration, so a loaded parser always segments its input the way
    it was trained.
    """

    tv_tagging: bool = True
    markers: bool = True
    classes: bool = True
    edge_words: bool = True
    edge_markers: bool = True
    #: also emit each word untagged (no @T/@V suffix).  A "more general
    #: class of words" feature: it lets evidence transfer between title and
    #: value positions, which helps on templates never seen in training
    #: (e.g. a bare "ADMINISTRATIVE CONTACT" banner when training only saw
    #: "Administrative Contact:" titles).
    plain_words: bool = True
    #: 4-character prefix features on title words ("P4:admi@T"), linking
    #: morphological variants across registrar vocabularies: admin ~
    #: administrative, tech ~ technical, organisation ~ organization,
    #: created ~ creation, expires ~ expiration ~ expiry.
    prefixes: bool = True
    #: propagate block-header context: lines indented under a header such as
    #: "Registrant:" receive a ``CTX:registrant`` attribute.  This encodes
    #: the paper's observation that "a field title appears alone with the
    #: following block representing the associated value" (Section 4.2).
    header_context: bool = True
    max_words_per_line: int = 40
    #: unit of labeling: "line" (one token per labelable line) or
    #: "char" (one token per character; see :meth:`WhoisFeaturizer.
    #: featurize_chars`)
    granularity: str = "line"

    @property
    def char_grained(self) -> bool:
        """True when this configuration labels characters, not lines."""
        return self.granularity == "char"


class WhoisFeaturizer:
    """Converter from WHOIS text to CRF attribute sequences.

    Optionally carries a frozen :class:`Lexicon`: words outside its
    vocabulary are *additionally* marked with ``UNK@T``/``UNK@V``
    attributes, giving the model an explicit out-of-vocabulary signal on
    never-seen templates (unknown words otherwise just contribute nothing).

    Featurization here is deliberately cache-free: one record in, one
    :class:`Sequence` out.  The bulk path
    (:class:`repro.parser.bulk.LineEncoder`) layers a memoizing per-line
    *encoding* cache on top of :meth:`line_attributes`, exploiting the
    massive line repetition across records of the same registrar schema.
    """

    def __init__(
        self,
        config: FeaturizerConfig | None = None,
        *,
        lexicon: Lexicon | None = None,
    ) -> None:
        """Featurizer with ``config`` switches and an optional fitted lexicon."""
        self.config = config or FeaturizerConfig()
        if self.config.granularity not in ("line", "char"):
            raise ValueError(
                f"unknown featurizer granularity "
                f"{self.config.granularity!r}; expected 'line' or 'char'"
            )
        self.lexicon = lexicon

    def _unknown(self, word: str) -> bool:
        return self.lexicon is not None and word not in self.lexicon

    # ------------------------------------------------------------------
    # Per-line analysis
    # ------------------------------------------------------------------

    def line_attributes(self, line: str) -> tuple[list[str], list[str]]:
        """Observation and edge attributes intrinsic to one unit of text.

        Under line granularity a unit is one labelable line; under char
        granularity it is one character and this delegates to
        :meth:`char_attributes`.  Either way the result is context-free
        (it depends only on the unit itself), which is what lets the
        bulk path (:class:`repro.parser.bulk.LineEncoder`) memoize it
        per distinct unit.
        """
        cfg = self.config
        if cfg.granularity == "char":
            return self.char_attributes(line)
        obs: list[str] = ["BIAS"]
        edge: list[str] = []
        split = split_title_value(line)
        if split is not None:
            title, value, kind = split
            obs.append("SEP")
            obs.append(f"SEP:{kind}")
            title_words = tokenize(title)[: cfg.max_words_per_line]
            value_words = tokenize(value)[: cfg.max_words_per_line]
            if not value_words:
                obs.append("EMPTYVAL")
            class_text = value if value_words else line
        else:
            title_words = []
            value_words = tokenize(line)[: cfg.max_words_per_line]
            class_text = line
        if cfg.tv_tagging:
            obs.extend(f"{w}@T" for w in title_words)
            obs.extend(f"{w}@V" for w in value_words)
        else:
            obs.extend(f"{w}@V" for w in title_words + value_words)
        if self.lexicon is not None:
            if any(self._unknown(w) for w in title_words):
                obs.append("UNK@T")
            if any(self._unknown(w) for w in value_words):
                obs.append("UNK@V")
        if cfg.plain_words:
            obs.extend(dict.fromkeys(title_words + value_words))
        if cfg.prefixes:
            # "@H" marks head-position words: the title, or the leading
            # words when the line has no separator.
            header_words = title_words if title_words else value_words[:3]
            obs.extend(dict.fromkeys(
                f"P4:{w[:4]}@H" for w in header_words if len(w) >= 4
            ))
        if cfg.classes:
            obs.extend(word_classes(class_text))
        if detect_symbol_start(line):
            obs.append("SYM")
            if cfg.edge_markers:
                edge.append("SYM")
        if cfg.edge_words:
            edge.extend(f"{w}@T" for w in title_words[:4])
            if not title_words and value_words:
                # Lines without separators transition on their first words
                # (e.g. the bare "Registrant" block headers).
                edge.extend(f"{w}@V" for w in value_words[:2])
        if split is not None and cfg.edge_markers:
            edge.append("SEP")
        return obs, edge

    # ------------------------------------------------------------------
    # Per-character analysis (char granularity)
    # ------------------------------------------------------------------

    def char_attributes(self, ch: str) -> tuple[list[str], list[str]]:
        """Observation and edge attributes intrinsic to one character.

        The char-granularity analog of the line analysis above: the
        character's identity (case-folded, with a ``CAP`` marker), its
        coarse class, and -- for delimiters -- the character itself as
        an *edge* attribute, since field transitions in unstructured
        strings happen at punctuation and whitespace (the role the
        ``SEP``/``NL`` markers play for lines).
        """
        cfg = self.config
        obs: list[str] = ["BIAS"]
        edge: list[str] = []
        if ch.isalnum():
            obs.append(f"C:{ch.lower()}")
            if ch.isupper():
                obs.append("CAP")
            obs.append("CC:digit" if ch.isdigit() else "CC:alpha")
        elif ch.isspace():
            obs.append("CC:space")
            if cfg.edge_markers:
                edge.append("E:space")
        else:
            obs.append(f"C:{ch}")
            obs.append("CC:punct")
            if cfg.edge_markers:
                edge.append(f"E:{ch}")
        return obs, edge

    def char_context(
        self, units: list[str]
    ) -> list[tuple[list[str], list[str]]]:
        """Context attributes for every character of one record.

        These are the char-granularity counterpart of the layout/header
        context of :meth:`featurize_lines` -- everything about a
        character that depends on its neighbors:

        - the containing word (``W:``, ``P4:`` prefix, a coarse token
          class, and ``BOW``/``EOW`` boundary markers) for alphanumeric
          characters;
        - the flanking words (``PW:``/``NW:``) for delimiter
          characters, which is how a comma "knows" whether it ends an
          author or precedes a year;
        - a position decile ``POS:`` (authors come early, DOIs late);
        - an edge attribute ``B:<delimiter>`` on the first character
          after a delimiter, feeding the transition features exactly
          where field boundaries occur.

        Attribute namespaces here are disjoint from
        :meth:`char_attributes` output by prefix construction, so the
        bulk encoder can concatenate the two id sets without a dedup
        pass (the invariant :meth:`LineEncoder.encode_record
        <repro.parser.bulk.LineEncoder.encode_record>` relies on).
        """
        cfg = self.config
        n = len(units)
        # Maximal alphanumeric runs of the concatenated text, as
        # (start, end, word) spans.
        tokens: list[tuple[int, int, str]] = []
        i = 0
        while i < n:
            if units[i].isalnum():
                j = i
                while j < n and units[j].isalnum():
                    j += 1
                tokens.append((i, j, "".join(units[i:j])))
                i = j
            else:
                i += 1
        owner: list[int | None] = [None] * n
        prev_token: list[int] = [-1] * n
        last = -1
        for t, (s, e, _w) in enumerate(tokens):
            for k in range(s, e):
                owner[k] = t
        for k in range(n):
            if owner[k] is not None:
                last = owner[k]
            prev_token[k] = last
        out: list[tuple[list[str], list[str]]] = []
        for k in range(n):
            obs: list[str] = []
            edge: list[str] = []
            t = owner[k]
            if t is not None:
                s, e, word = tokens[t]
                lowered = word.lower()
                if cfg.plain_words:
                    obs.append(f"W:{lowered}")
                if cfg.prefixes and len(lowered) >= 4:
                    obs.append(f"P4:{lowered[:4]}")
                if cfg.classes:
                    if word.isdigit():
                        obs.append(
                            "TC:num4" if len(word) == 4 else "TC:num"
                        )
                    elif word[0].isupper():
                        obs.append("TC:cap")
                if cfg.markers:
                    if k == s:
                        obs.append("BOW")
                    if k == e - 1:
                        obs.append("EOW")
            elif cfg.tv_tagging:
                p = prev_token[k]
                if p >= 0:
                    obs.append(f"PW:{tokens[p][2].lower()}")
                if p + 1 < len(tokens):
                    obs.append(f"NW:{tokens[p + 1][2].lower()}")
            if cfg.markers and n:
                obs.append(f"POS:{(k * 10) // n}")
            if cfg.edge_markers and k > 0 and units[k].isalnum():
                before = units[k - 1]
                if not before.isalnum():
                    edge.append(
                        "B:space" if before.isspace() else f"B:{before}"
                    )
            out.append((obs, edge))
        return out

    def featurize_chars(self, units: list[str]) -> Sequence:
        """Featurize one record's characters (char granularity).

        ``units`` is the segmented record -- one single-character string
        per token, every one of them labelable (spaces and punctuation
        carry labels too, so field values reassemble exactly).
        """
        obs_seq: list[list[str]] = []
        edge_seq: list[list[str]] = []
        for unit, (ctx_obs, ctx_edge) in zip(units, self.char_context(units)):
            obs, edge = self.char_attributes(unit)
            obs.extend(ctx_obs)
            edge.extend(ctx_edge)
            obs_seq.append(obs)
            edge_seq.append(edge)
        return Sequence(obs=obs_seq, edge=edge_seq)

    # ------------------------------------------------------------------
    # Whole-record featurization (first-level CRF)
    # ------------------------------------------------------------------

    def featurize_lines(self, raw_lines: list[str]) -> Sequence:
        """Featurize the labelable units of a record, with layout context.

        Under char granularity ``raw_lines`` holds the record's
        segmented characters and this delegates to
        :meth:`featurize_chars`.
        """
        cfg = self.config
        if cfg.granularity == "char":
            return self.featurize_chars(raw_lines)
        obs_seq: list[list[str]] = []
        edge_seq: list[list[str]] = []
        blank_run = 0
        prev_indent: int | None = None
        header: tuple[str, int] | None = None  # (headword, indent)
        for line in raw_lines:
            if not is_labelable(line):
                blank_run += 1
                continue
            obs, edge = self.line_attributes(line)
            indent = indentation(line)
            if cfg.markers:
                if blank_run > 0:
                    obs.append("NL")
                    if cfg.edge_markers:
                        edge.append("NL")
                if prev_indent is not None:
                    if indent < prev_indent:
                        obs.append("SHL")
                        if cfg.edge_markers:
                            edge.append("SHL")
                    elif indent > prev_indent:
                        obs.append("SHR")
                        if cfg.edge_markers:
                            edge.append("SHR")
                prev_indent = indent
            if cfg.header_context:
                if header is not None and indent > header[1]:
                    obs.append(f"CTX:{header[0]}")
                    if cfg.prefixes and len(header[0]) >= 4:
                        obs.append(f"CTX4:{header[0][:4]}")
                else:
                    header = None
                headword = self.headword(line)
                if headword is not None:
                    header = (headword, indent)
            blank_run = 0
            obs_seq.append(obs)
            edge_seq.append(edge)
        return Sequence(obs=obs_seq, edge=edge_seq)

    @staticmethod
    def headword(line: str) -> str | None:
        """First word of a block-header line, or None if not a header.

        A header is a line whose separator has an empty value
        ("Registrant:") or a short line with no separator at all
        ("Domain servers in listed order" would qualify via its colon).
        """
        split = split_title_value(line)
        if split is not None:
            title, value, _kind = split
            if not tokenize(value):
                words = tokenize(title)
                return words[0] if words else None
            return None
        words = tokenize(line)
        if words and len(words) <= 4:
            return words[0]
        return None

    def featurize_record(self, record: WhoisRecord) -> Sequence:
        """Per-line attribute lists for a record's labelable lines."""
        return self.featurize_lines(record.lines)

    def featurize_text(self, text: str) -> Sequence:
        """Per-unit attribute lists straight from raw record text."""
        if self.config.granularity == "char":
            from repro.whois.records import segment_chars

            return self.featurize_chars(segment_chars(text))
        return self.featurize_lines(text.splitlines())

    # ------------------------------------------------------------------
    # Registrant-block featurization (second-level CRF)
    # ------------------------------------------------------------------

    def featurize_registrant_lines(self, lines: list[str]) -> Sequence:
        """Featurize a registrant block for the second-level CRF.

        The block is a contiguous run of labelable lines, so ``NL`` context
        does not apply; indentation shifts within the block do.
        """
        return self.featurize_lines(lines)
