"""Featurization of WHOIS records into CRF attribute sequences (Section 3.3).

:class:`WhoisFeaturizer` turns the labelable lines of a record into a
:class:`repro.crf.Sequence` whose attributes reproduce the paper's feature
families:

- dictionary words suffixed ``@T`` (left of the first separator) or ``@V``
  (right of it, or the whole line when no separator exists);
- the ``SEP`` marker and its kind when a separator is present;
- layout markers ``NL`` (preceded by one or more blank lines), ``SHL`` /
  ``SHR`` (indentation shift left/right relative to the previous labelable
  line) and ``SYM`` (line begins with a symbol such as ``#`` or ``%``);
- word-class attributes (``CLS:fivedigit``, ``CLS:email``, ...) as in
  eq. (7).

Observation attributes feed features of the forms in eqs. (6)-(7);
the *edge* attributes (markers plus title words) feed the
transition-detecting features of eq. (8) that Figure 1 visualizes.
Every family can be disabled independently for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crf.features import Sequence
from repro.whois.lexicon import Lexicon
from repro.whois.records import WhoisRecord, is_labelable
from repro.whois.text import (
    detect_symbol_start,
    indentation,
    split_title_value,
    tokenize,
    word_classes,
)


@dataclass(frozen=True)
class FeaturizerConfig:
    """Switches for the feature families (used by the ablation study)."""

    tv_tagging: bool = True
    markers: bool = True
    classes: bool = True
    edge_words: bool = True
    edge_markers: bool = True
    #: also emit each word untagged (no @T/@V suffix).  A "more general
    #: class of words" feature: it lets evidence transfer between title and
    #: value positions, which helps on templates never seen in training
    #: (e.g. a bare "ADMINISTRATIVE CONTACT" banner when training only saw
    #: "Administrative Contact:" titles).
    plain_words: bool = True
    #: 4-character prefix features on title words ("P4:admi@T"), linking
    #: morphological variants across registrar vocabularies: admin ~
    #: administrative, tech ~ technical, organisation ~ organization,
    #: created ~ creation, expires ~ expiration ~ expiry.
    prefixes: bool = True
    #: propagate block-header context: lines indented under a header such as
    #: "Registrant:" receive a ``CTX:registrant`` attribute.  This encodes
    #: the paper's observation that "a field title appears alone with the
    #: following block representing the associated value" (Section 4.2).
    header_context: bool = True
    max_words_per_line: int = 40


class WhoisFeaturizer:
    """Converter from WHOIS text to CRF attribute sequences.

    Optionally carries a frozen :class:`Lexicon`: words outside its
    vocabulary are *additionally* marked with ``UNK@T``/``UNK@V``
    attributes, giving the model an explicit out-of-vocabulary signal on
    never-seen templates (unknown words otherwise just contribute nothing).

    Featurization here is deliberately cache-free: one record in, one
    :class:`Sequence` out.  The bulk path
    (:class:`repro.parser.bulk.LineEncoder`) layers a memoizing per-line
    *encoding* cache on top of :meth:`line_attributes`, exploiting the
    massive line repetition across records of the same registrar schema.
    """

    def __init__(
        self,
        config: FeaturizerConfig | None = None,
        *,
        lexicon: Lexicon | None = None,
    ) -> None:
        """Featurizer with ``config`` switches and an optional fitted lexicon."""
        self.config = config or FeaturizerConfig()
        self.lexicon = lexicon

    def _unknown(self, word: str) -> bool:
        return self.lexicon is not None and word not in self.lexicon

    # ------------------------------------------------------------------
    # Per-line analysis
    # ------------------------------------------------------------------

    def line_attributes(self, line: str) -> tuple[list[str], list[str]]:
        """Observation and edge attributes intrinsic to one line of text."""
        cfg = self.config
        obs: list[str] = ["BIAS"]
        edge: list[str] = []
        split = split_title_value(line)
        if split is not None:
            title, value, kind = split
            obs.append("SEP")
            obs.append(f"SEP:{kind}")
            title_words = tokenize(title)[: cfg.max_words_per_line]
            value_words = tokenize(value)[: cfg.max_words_per_line]
            if not value_words:
                obs.append("EMPTYVAL")
            class_text = value if value_words else line
        else:
            title_words = []
            value_words = tokenize(line)[: cfg.max_words_per_line]
            class_text = line
        if cfg.tv_tagging:
            obs.extend(f"{w}@T" for w in title_words)
            obs.extend(f"{w}@V" for w in value_words)
        else:
            obs.extend(f"{w}@V" for w in title_words + value_words)
        if self.lexicon is not None:
            if any(self._unknown(w) for w in title_words):
                obs.append("UNK@T")
            if any(self._unknown(w) for w in value_words):
                obs.append("UNK@V")
        if cfg.plain_words:
            obs.extend(dict.fromkeys(title_words + value_words))
        if cfg.prefixes:
            # "@H" marks head-position words: the title, or the leading
            # words when the line has no separator.
            header_words = title_words if title_words else value_words[:3]
            obs.extend(dict.fromkeys(
                f"P4:{w[:4]}@H" for w in header_words if len(w) >= 4
            ))
        if cfg.classes:
            obs.extend(word_classes(class_text))
        if detect_symbol_start(line):
            obs.append("SYM")
            if cfg.edge_markers:
                edge.append("SYM")
        if cfg.edge_words:
            edge.extend(f"{w}@T" for w in title_words[:4])
            if not title_words and value_words:
                # Lines without separators transition on their first words
                # (e.g. the bare "Registrant" block headers).
                edge.extend(f"{w}@V" for w in value_words[:2])
        if split is not None and cfg.edge_markers:
            edge.append("SEP")
        return obs, edge

    # ------------------------------------------------------------------
    # Whole-record featurization (first-level CRF)
    # ------------------------------------------------------------------

    def featurize_lines(self, raw_lines: list[str]) -> Sequence:
        """Featurize the labelable lines of a record, with layout context."""
        cfg = self.config
        obs_seq: list[list[str]] = []
        edge_seq: list[list[str]] = []
        blank_run = 0
        prev_indent: int | None = None
        header: tuple[str, int] | None = None  # (headword, indent)
        for line in raw_lines:
            if not is_labelable(line):
                blank_run += 1
                continue
            obs, edge = self.line_attributes(line)
            indent = indentation(line)
            if cfg.markers:
                if blank_run > 0:
                    obs.append("NL")
                    if cfg.edge_markers:
                        edge.append("NL")
                if prev_indent is not None:
                    if indent < prev_indent:
                        obs.append("SHL")
                        if cfg.edge_markers:
                            edge.append("SHL")
                    elif indent > prev_indent:
                        obs.append("SHR")
                        if cfg.edge_markers:
                            edge.append("SHR")
                prev_indent = indent
            if cfg.header_context:
                if header is not None and indent > header[1]:
                    obs.append(f"CTX:{header[0]}")
                    if cfg.prefixes and len(header[0]) >= 4:
                        obs.append(f"CTX4:{header[0][:4]}")
                else:
                    header = None
                headword = self.headword(line)
                if headword is not None:
                    header = (headword, indent)
            blank_run = 0
            obs_seq.append(obs)
            edge_seq.append(edge)
        return Sequence(obs=obs_seq, edge=edge_seq)

    @staticmethod
    def headword(line: str) -> str | None:
        """First word of a block-header line, or None if not a header.

        A header is a line whose separator has an empty value
        ("Registrant:") or a short line with no separator at all
        ("Domain servers in listed order" would qualify via its colon).
        """
        split = split_title_value(line)
        if split is not None:
            title, value, _kind = split
            if not tokenize(value):
                words = tokenize(title)
                return words[0] if words else None
            return None
        words = tokenize(line)
        if words and len(words) <= 4:
            return words[0]
        return None

    def featurize_record(self, record: WhoisRecord) -> Sequence:
        """Per-line attribute lists for a record's labelable lines."""
        return self.featurize_lines(record.lines)

    def featurize_text(self, text: str) -> Sequence:
        """Per-line attribute lists straight from raw record text."""
        return self.featurize_lines(text.splitlines())

    # ------------------------------------------------------------------
    # Registrant-block featurization (second-level CRF)
    # ------------------------------------------------------------------

    def featurize_registrant_lines(self, lines: list[str]) -> Sequence:
        """Featurize a registrant block for the second-level CRF.

        The block is a contiguous run of labelable lines, so ``NL`` context
        does not apply; indentation shifts within the block do.
        """
        return self.featurize_lines(lines)
