"""WHOIS record model and the paper's text featurization (Section 3.2-3.3)."""

from repro.whois.labels import (
    BLOCK_LABELS,
    REGISTRANT_LABELS,
    BlockLabel,
    RegistrantLabel,
)
from repro.whois.records import LabeledLine, LabeledRecord, WhoisRecord, is_labelable
from repro.whois.text import (
    detect_symbol_start,
    indentation,
    split_title_value,
    tokenize,
    word_classes,
)
from repro.whois.lexicon import Lexicon
from repro.whois.features import FeaturizerConfig, WhoisFeaturizer

__all__ = [
    "BLOCK_LABELS",
    "REGISTRANT_LABELS",
    "BlockLabel",
    "RegistrantLabel",
    "FeaturizerConfig",
    "LabeledLine",
    "LabeledRecord",
    "Lexicon",
    "WhoisFeaturizer",
    "WhoisRecord",
    "detect_symbol_start",
    "indentation",
    "is_labelable",
    "split_title_value",
    "tokenize",
    "word_classes",
]
