"""The two label spaces of the paper's two-level parsing strategy (Section 3.2)."""

from __future__ import annotations

from enum import Enum


class BlockLabel(str, Enum):
    """First-level labels: the six blocks of information in a WHOIS record."""

    REGISTRAR = "registrar"
    DOMAIN = "domain"
    DATE = "date"
    REGISTRANT = "registrant"
    OTHER = "other"
    NULL = "null"


class RegistrantLabel(str, Enum):
    """Second-level labels: the twelve registrant sub-fields."""

    NAME = "name"
    ID = "id"
    ORG = "org"
    STREET = "street"
    CITY = "city"
    STATE = "state"
    POSTCODE = "postcode"
    COUNTRY = "country"
    PHONE = "phone"
    FAX = "fax"
    EMAIL = "email"
    OTHER = "other"


BLOCK_LABELS: tuple[str, ...] = tuple(label.value for label in BlockLabel)
REGISTRANT_LABELS: tuple[str, ...] = tuple(label.value for label in RegistrantLabel)
