"""Word dictionary with frequency trimming (Section 3.3).

The paper compiles a dictionary of all words appearing in the training set
and trims the very infrequent ones.  :class:`Lexicon` provides that
dictionary as a reusable object: the featurizer can consult it to map
out-of-vocabulary words to a shared ``UNK`` attribute, and analyses can use
it for corpus statistics.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.whois.text import tokenize


class Lexicon:
    """A frequency-counted word dictionary."""

    def __init__(self) -> None:
        """An empty, unfrozen lexicon ready to count tokens."""
        self.counts: Counter[str] = Counter()
        self._vocab: frozenset[str] | None = None

    def add_text(self, text: str) -> None:
        """Count the tokens of one text (only before :meth:`freeze`)."""
        if self._vocab is not None:
            raise RuntimeError("lexicon is frozen; create a new one to re-count")
        self.counts.update(tokenize(text))

    def add_texts(self, texts: Iterable[str]) -> None:
        """Count every text in ``texts``."""
        for text in texts:
            self.add_text(text)

    @classmethod
    def from_vocabulary(cls, words: Iterable[str]) -> "Lexicon":
        """A frozen lexicon over an explicit vocabulary (no counts).

        This is the deserialization path: a saved parser stores only the
        frozen vocabulary, not the training-corpus frequencies.
        """
        lexicon = cls()
        lexicon._vocab = frozenset(words)
        return lexicon

    def freeze(self, min_count: int = 1) -> "Lexicon":
        """Trim words below ``min_count`` and freeze the vocabulary."""
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._vocab = frozenset(
            word for word, count in self.counts.items() if count >= min_count
        )
        return self

    @property
    def vocabulary(self) -> frozenset[str]:
        """The frozen vocabulary (raises until :meth:`freeze` is called)."""
        if self._vocab is None:
            raise RuntimeError("freeze() the lexicon before using its vocabulary")
        return self._vocab

    def __contains__(self, word: str) -> bool:
        return word in self.vocabulary

    def __len__(self) -> int:
        return len(self.vocabulary)

    def most_common(self, k: int = 20) -> list[tuple[str, int]]:
        """The ``k`` highest-count tokens as ``(token, count)`` pairs."""
        return self.counts.most_common(k)
