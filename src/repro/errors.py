"""The shared error taxonomy.

Every failure the pipeline can report -- a crawl attempt that timed out,
a thick record the parser refuses to trust, an RDAP lookup for a domain
we never crawled -- derives from :class:`ReproError` and carries a
stable machine-readable ``code`` plus an HTTP-analog ``http_status``.
The crawler raises these internally instead of threading status strings
through return values, and :meth:`repro.rdap.server.RdapGateway.error_json`
serializes them, so crawl failures and gateway failures speak one
language (``error_payload`` is the canonical wire shape for both).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CircuitOpen",
    "CrawlError",
    "DomainMismatch",
    "DomainNotFound",
    "GarbledRecord",
    "NoReferral",
    "Overloaded",
    "RecordMissing",
    "RateLimited",
    "ReproError",
    "Reset",
    "Timeout",
    "TransientServerError",
    "Truncated",
    "Unavailable",
    "UnknownDomain",
    "error_from_payload",
    "error_payload",
]


class ReproError(Exception):
    """Base class for every typed failure in the pipeline.

    Subclasses pin ``code`` (a stable taxonomy slug, the thing metrics
    and databases key on) and ``http_status`` (the RDAP/HTTP analog the
    gateway serializes).
    """

    code: str = "error"
    http_status: int = 500

    def to_payload(self) -> dict[str, Any]:
        """The canonical serialization of this error (one taxonomy for
        crawl failures, quarantine reasons, and RDAP error bodies)."""
        return {
            "code": self.code,
            "type": type(self).__name__,
            "status": self.http_status,
            "detail": str(self),
        }


class CrawlError(ReproError):
    """A WHOIS crawl attempt failed in a classified way.

    Carries the server and domain involved plus how many attempts were
    spent, so failure accounting (Section 4.1's ~7.5%) can be broken
    down by cause rather than lumped into one "failed" bucket.
    """

    code = "crawl_error"
    http_status = 502

    def __init__(
        self,
        message: str = "",
        *,
        server: str | None = None,
        domain: str | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message or self.code)
        self.server = server
        self.domain = domain
        self.attempts = attempts

    def to_payload(self) -> dict[str, Any]:
        payload = super().to_payload()
        payload["server"] = self.server
        payload["domain"] = self.domain
        payload["attempts"] = self.attempts
        return payload


class Timeout(CrawlError):
    """The server never answered within our patience (or the connection
    silently dropped -- the dominant real-WHOIS failure mode)."""

    code = "timeout"
    http_status = 504


class Reset(CrawlError):
    """The connection was actively reset mid-exchange."""

    code = "reset"
    http_status = 502


class Truncated(CrawlError):
    """A thick record arrived cut off mid-stream."""

    code = "truncated"
    http_status = 502


class RateLimited(CrawlError):
    """The server refused service (limit exceeded, error banner, or the
    empty responses Section 4.1 describes)."""

    code = "rate_limited"
    http_status = 429


class NoReferral(CrawlError):
    """The thin record names no registrar WHOIS server to follow."""

    code = "no_referral"
    http_status = 502


class RecordMissing(CrawlError):
    """The registry knows the domain but its registrar's server does not
    (stale referral, migrated sponsorship)."""

    code = "record_missing"
    http_status = 502


class GarbledRecord(CrawlError):
    """The response decoded to garbage: empty body, mojibake, binary."""

    code = "garbled_record"
    http_status = 502


class TransientServerError(CrawlError):
    """A 5xx-analog failure the server itself labeled temporary."""

    code = "transient_error"
    http_status = 502


class CircuitOpen(CrawlError):
    """The crawler's own circuit breaker refused to query the server."""

    code = "circuit_open"
    http_status = 503


class Overloaded(ReproError):
    """The serving tier shed this request: queue depth or in-flight work
    exceeded the admission limits (the load-shedding 503)."""

    code = "overloaded"
    http_status = 503


class Unavailable(ReproError):
    """The serving tier is not accepting requests (shutting down, or no
    model published yet)."""

    code = "unavailable"
    http_status = 503


class UnknownDomain(ReproError, KeyError):
    """No :class:`~repro.domain.DomainSpec` is registered under this name.

    Raised by :func:`repro.domain.get_domain` when a ``--domain`` flag
    (or a snapshot's persisted domain id) names a plug-in this build does
    not ship.
    """

    code = "unknown_domain"
    http_status = 404

    def __str__(self) -> str:  # KeyError quotes its argument; undo that.
        return Exception.__str__(self)


class DomainMismatch(ReproError):
    """A model snapshot belongs to a different parsing domain.

    Raised when a snapshot trained for one domain (say ``syslog``) is
    loaded into a registry or server configured for another (say
    ``whois``): the label spaces and featurizers are incompatible, so
    failing with a typed 409 beats a shape crash deep inside the CRF.
    """

    code = "domain_mismatch"
    http_status = 409


class DomainNotFound(ReproError, KeyError):
    """No WHOIS record available for this domain (the RDAP 404)."""

    code = "domain_not_found"
    http_status = 404

    def __str__(self) -> str:  # KeyError quotes its argument; undo that.
        return Exception.__str__(self)


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Serialize any exception through the taxonomy.

    :class:`ReproError` instances render their own payload; foreign
    exceptions get the generic 500 shape so one code path can serialize
    anything that escapes the pipeline.
    """
    if isinstance(exc, ReproError):
        return exc.to_payload()
    return {
        "code": "internal_error",
        "type": type(exc).__name__,
        "status": 500,
        "detail": f"{type(exc).__name__}: {exc}",
    }


def _taxonomy_by_code() -> dict[str, type[ReproError]]:
    """code -> class for every concrete taxonomy member."""
    index: dict[str, type[ReproError]] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        index.setdefault(cls.code, cls)
        stack.extend(cls.__subclasses__())
    return index


def error_from_payload(payload: dict[str, Any]) -> ReproError:
    """Revive a typed error from its :func:`error_payload` serialization.

    The inverse direction the durable survey store needs: quarantine
    rows persist their rejection reason as a payload, and reading the
    replica back must yield the same typed error (code, detail, and --
    for :class:`CrawlError` families -- server/domain/attempts).
    Unknown codes revive as plain :class:`ReproError` so a newer
    replica still loads, keeping its ``detail`` text.
    """
    cls = _taxonomy_by_code().get(payload.get("code", "error"), ReproError)
    detail = payload.get("detail", "")
    if issubclass(cls, CrawlError):
        return cls(
            detail,
            server=payload.get("server"),
            domain=payload.get("domain"),
            attempts=payload.get("attempts", 0),
        )
    return cls(detail)
