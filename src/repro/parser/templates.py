"""A deft-whois-style template parser (Section 2.3).

Template parsers keep one template per registrar (or registry).  A template
maps each line's *key* -- its normalized field title, or its first words
when the line has no separator -- to a label.  They are "very
straightforward and highly effective when a good template is available",
fail *completely* (a crisp signal) when no template exists, and are
"highly fragile to variation": a renamed field title produces unknown keys
and the parse is rejected.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.parser.api import ParserBase
from repro.parser.fields import ParsedRecord, assemble_record
from repro.whois.records import LabeledRecord, WhoisRecord, is_labelable
from repro.whois.text import split_title_value, tokenize


class TemplateMissingError(KeyError):
    """No template exists for this record's registrar."""


class TemplateMismatchError(ValueError):
    """The record contains lines the registrar's template does not know."""


def line_key(line: str) -> str:
    """The lookup key of one line: its title, or its leading words."""
    split = split_title_value(line)
    if split is not None:
        title_words = tokenize(split[0])
        if title_words:
            return "t:" + " ".join(title_words)
    words = tokenize(line)
    return "v:" + " ".join(words[:2])


@dataclass
class Template:
    """Per-registrar mapping from line keys to (block, sub) labels."""

    registrar: str
    keys: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    n_examples: int = 0

    def learn(self, record: LabeledRecord) -> None:
        for line in record.lines:
            key = line_key(line.text)
            self.keys.setdefault(key, (line.block, line.sub))
        self.n_examples += 1

    def apply(self, lines: list[str]) -> list[tuple[str, str | None]]:
        labels: list[tuple[str, str | None]] = []
        unknown: list[str] = []
        for line in lines:
            key = line_key(line)
            hit = self.keys.get(key)
            if hit is None:
                unknown.append(key)
                labels.append(("null", None))
            else:
                labels.append(hit)
        if unknown:
            raise TemplateMismatchError(
                f"{self.registrar}: {len(unknown)} unknown line keys, e.g. "
                f"{unknown[0]!r}"
            )
        return labels


class TemplateParser(ParserBase):
    """Per-registrar template parser with deft-whois failure semantics.

    Conforms to the unified :class:`~repro.parser.api.Parser` protocol:
    :meth:`parse` returns a :class:`ParsedRecord` when a template matches
    and raises :class:`TemplateMissingError` /
    :class:`TemplateMismatchError` otherwise -- template parsing *is*
    its crisp failure signal, so raw text without a registrar identity
    fails loudly rather than guessing.
    """

    def __init__(self) -> None:
        self.templates: dict[str, Template] = {}

    def fit(self, records: Iterable[LabeledRecord]) -> "TemplateParser":
        """Build one template per registrar seen in ``records``."""
        for record in records:
            registrar = record.registrar or "<unknown>"
            template = self.templates.setdefault(registrar, Template(registrar))
            template.learn(record)
        return self

    @property
    def n_templates(self) -> int:
        return len(self.templates)

    def has_template(self, registrar: str) -> bool:
        return registrar in self.templates

    def coverage(self, records: Iterable[LabeledRecord]) -> float:
        """Fraction of records whose registrar has a template.

        This is the "94% of our test data comes from registrars ...
        represented by these templates" statistic.
        """
        records = list(records)
        if not records:
            return 0.0
        covered = sum(
            1 for record in records if self.has_template(record.registrar or "")
        )
        return covered / len(records)

    def _apply(
        self,
        record: WhoisRecord | LabeledRecord | str,
        registrar: str | None,
    ) -> tuple[list[str], list[tuple[str, str | None]]]:
        """Resolve the template and label every labelable line."""
        if registrar is None:
            if not isinstance(record, LabeledRecord) or record.registrar is None:
                raise TemplateMissingError(
                    "template parsing requires the registrar identity "
                    "(extracted from the thin record in a real deployment)"
                )
            registrar = record.registrar
        template = self.templates.get(registrar)
        if template is None:
            raise TemplateMissingError(registrar)
        if isinstance(record, str):
            raw = record.splitlines()
        elif isinstance(record, LabeledRecord):
            raw = record.raw_lines
        else:
            raw = record.lines
        lines = [ln for ln in raw if is_labelable(ln)]
        return lines, template.apply(lines)

    def predict_blocks(
        self, record: WhoisRecord | LabeledRecord, registrar: str | None = None
    ) -> list[str]:
        """Labels for each line; raises on missing template or drifted format."""
        _, labels = self._apply(record, registrar)
        return [block for block, _sub in labels]

    def parse(
        self,
        record: WhoisRecord | LabeledRecord | str,
        registrar: str | None = None,
    ) -> ParsedRecord:
        """Structured fields via the registrar's template (Parser protocol).

        ``registrar`` overrides the identity lookup for raw-text inputs
        (in a real deployment it arrives with the thin record).
        """
        lines, labels = self._apply(record, registrar)
        blocks = [block for block, _sub in labels]
        subs = [
            sub or "other" for block, sub in labels if block == "registrant"
        ]
        return assemble_record(lines, blocks, subs)

    def try_parse(
        self, record: LabeledRecord
    ) -> tuple[str, list[str] | None]:
        """Parse with a status: ``("ok"|"missing"|"mismatch", labels|None)``."""
        try:
            return "ok", self.predict_blocks(record)
        except TemplateMissingError:
            return "missing", None
        except TemplateMismatchError:
            return "mismatch", None

    def outcome_counts(self, records: Iterable[LabeledRecord]) -> Counter:
        """Tally of try_parse outcomes over a corpus."""
        counts: Counter = Counter()
        for record in records:
            status, _ = self.try_parse(record)
            counts[status] += 1
        return counts
