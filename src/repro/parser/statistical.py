"""The paper's statistical parser: a two-level CRF pipeline (Section 3).

The first-level :class:`~repro.crf.ChainCRF` labels every line of a record
with one of the domain's block labels; the second-level CRF relabels the
lines inside the domain's sub-block (WHOIS: registrant blocks, with the
twelve sub-field labels).  Both are trained from
:class:`~repro.whois.records.LabeledRecord` corpora and can be enlarged
with a handful of new labeled examples (``partial_fit``), which is the
maintainability workflow of Section 5.3.

Everything domain-specific -- the two label spaces, the default feature
configuration, and field assembly -- resolves through a
:class:`~repro.domain.DomainSpec` (``domain="whois"`` by default, which
reproduces the paper exactly; see :mod:`repro.domain`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence as TypingSequence

import numpy as np

from repro import errors, obs
from repro.crf.features import Sequence
from repro.crf.model import ChainCRF
from repro.domain import DomainSpec, get_domain, sub_segments
from repro.parser.api import ParserBase
from repro.parser.fields import ParsedRecord
from repro.whois.features import FeaturizerConfig, WhoisFeaturizer
from repro.whois.records import LabeledRecord, WhoisRecord, is_labelable


def _block_runs(blocks: list[str], label: str) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` spans of contiguous ``label`` runs."""
    runs: list[tuple[int, int]] = []
    start: int | None = None
    for i, block in enumerate(blocks):
        if block == label and start is None:
            start = i
        elif block != label and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(blocks)))
    return runs


#: Per-worker parser for the multiprocessing shards of parse_many /
#: label_lines_many.  Set once by the pool initializer: with the fork
#: start method the parser (and its warm line caches) is inherited
#: copy-on-write; with spawn it is pickled once per worker -- either
#: way, per-task payloads stay small.
_SHARD_PARSER: "WhoisParser | None" = None


def _init_shard_worker(parser: "WhoisParser") -> None:
    global _SHARD_PARSER
    _SHARD_PARSER = parser


def _parse_shard(payload: tuple[list, int]) -> list[ParsedRecord]:
    records, chunk_size = payload
    return _SHARD_PARSER.parse_many(records, jobs=1, chunk_size=chunk_size)


def _label_shard(payload: tuple[list, int]) -> list:
    records, chunk_size = payload
    return _SHARD_PARSER.label_lines_many(
        records, jobs=1, chunk_size=chunk_size
    )


class WhoisParser(ParserBase):
    """Two-level statistical parser (WHOIS by default, domain-pluggable).

    Parameters mirror the paper's setup: an L2-regularized CRF per level,
    dictionary trimming via ``min_count``, and the Section 3.3 feature
    families (configurable through ``featurizer_config`` for ablations;
    unset, the domain's default configuration applies).  ``domain``
    selects the :class:`~repro.domain.DomainSpec` everything else
    resolves through -- label spaces, sub-block, and field assembly.

    Examples
    --------
    >>> from repro.datagen import CorpusGenerator
    >>> corpus = CorpusGenerator(seed=0).labeled_corpus(50)
    >>> parser = WhoisParser().fit(corpus)
    >>> parsed = parser.parse(corpus[0].to_record())
    >>> parsed.domain == corpus[0].domain
    True
    """

    def __init__(
        self,
        *,
        domain: "str | DomainSpec" = "whois",
        featurizer_config: FeaturizerConfig | None = None,
        l2: float = 1.0,
        min_count: int = 1,
        unk_min_count: int | None = None,
        trainer: str = "lbfgs",
        max_iterations: int = 120,
        second_level: bool = True,
        seed: int = 0,
    ) -> None:
        self.spec = get_domain(domain)
        self.featurizer = WhoisFeaturizer(
            featurizer_config or self.spec.featurizer_config
        )
        #: with unk_min_count set, fit() builds a dictionary from the
        #: training corpus (trimming words rarer than the threshold) and
        #: marks out-of-vocabulary words with explicit UNK attributes
        self._unk_min_count = unk_min_count
        self._crf_kwargs = dict(
            min_count=min_count,
            l2=l2,
            trainer=trainer,
            max_iterations=max_iterations,
            seed=seed,
        )
        self.block_crf = ChainCRF(self.spec.block_labels, **self._crf_kwargs)
        self.registrant_crf = (
            ChainCRF(self.spec.sub_labels, **self._crf_kwargs)
            if second_level and self.spec.has_second_level
            else None
        )
        self._trained_on: int = 0
        #: lazy (block, registrant) LineEncoder pair for the bulk path;
        #: dropped whenever the model -- and with it the vocabularies the
        #: cached ids resolve against -- changes.
        self._bulk_encoders = None

    def __getstate__(self):
        # The line-encoding caches can hold hundreds of thousands of
        # entries; rebuild them in each worker instead of pickling them.
        state = self.__dict__.copy()
        state["_bulk_encoders"] = None
        return state

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _block_dataset(
        self, records: Iterable[LabeledRecord]
    ) -> tuple[list[Sequence], list[list[str]]]:
        sequences, labels = [], []
        for record in records:
            sequences.append(self.featurizer.featurize_lines(record.raw_lines))
            labels.append(record.block_labels)
        return sequences, labels

    def _registrant_dataset(
        self, records: Iterable[LabeledRecord]
    ) -> tuple[list[Sequence], list[list[str]]]:
        sequences, labels = [], []
        for record in records:
            for texts, subs in sub_segments(record, self.spec):
                sequences.append(
                    self.featurizer.featurize_registrant_lines(texts)
                )
                labels.append(subs)
        return sequences, labels

    def fit(
        self,
        records: TypingSequence[LabeledRecord],
        *,
        resume=None,
        checkpoint_every: int = 0,
        on_checkpoint=None,
    ) -> "WhoisParser":
        """Estimate both CRFs from labeled records.

        ``resume`` / ``checkpoint_every`` / ``on_checkpoint`` thread the
        crash-safe checkpoint machinery through to the first-level CRF
        (the expensive one); see :meth:`repro.crf.ChainCRF.fit`.
        """
        records = list(records)
        if not records:
            raise ValueError("cannot train on an empty corpus")
        if self._unk_min_count is not None:
            from repro.whois.lexicon import Lexicon

            lexicon = Lexicon()
            lexicon.add_texts(record.text for record in records)
            self.featurizer.lexicon = lexicon.freeze(self._unk_min_count)
        sequences, labels = self._block_dataset(records)
        with obs.trace("train.fit_seconds", level="block"):
            self.block_crf.fit(
                sequences,
                labels,
                resume=resume,
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint,
            )
        if self.registrant_crf is not None:
            reg_seqs, reg_labels = self._registrant_dataset(records)
            if reg_seqs:
                with obs.trace("train.fit_seconds", level="registrant"):
                    self.registrant_crf.fit(reg_seqs, reg_labels)
        self._trained_on = len(records)
        self._bulk_encoders = None
        return self

    def partial_fit(
        self,
        new_records: TypingSequence[LabeledRecord],
        *,
        replay: TypingSequence[LabeledRecord] = (),
        resume=None,
        checkpoint_every: int = 0,
        on_checkpoint=None,
    ) -> "WhoisParser":
        """Enlarge the parser with newly labeled records (Section 5.3).

        ``replay`` is an optional sample of earlier training records mixed
        in so the enlarged model does not forget the original formats.
        ``checkpoint_every`` / ``on_checkpoint`` forward to the first-level
        trainer (the expensive one), snapshotting resumable
        :class:`~repro.crf.train.TrainerState` objects mid-retrain -- the
        mechanism :mod:`repro.pipeline.retrain` persists to disk.
        """
        new_records = list(new_records)
        if not new_records:
            return self
        sequences, labels = self._block_dataset(new_records)
        replay_pairs = list(zip(*self._block_dataset(replay))) if replay else None
        self.block_crf.partial_fit(
            sequences,
            labels,
            replay=replay_pairs,
            resume=resume,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
        if self.registrant_crf is not None and self.registrant_crf.is_fitted:
            reg_seqs, reg_labels = self._registrant_dataset(new_records)
            if reg_seqs:
                replay_reg = (
                    list(zip(*self._registrant_dataset(replay))) if replay else None
                )
                self.registrant_crf.partial_fit(
                    reg_seqs, reg_labels, replay=replay_reg
                )
        self._trained_on += len(new_records)
        self._bulk_encoders = None
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _raw_lines(self, record: WhoisRecord | LabeledRecord | str) -> list[str]:
        """A record's raw units, segmented per the featurizer granularity.

        Labeled records keep their stored segmentation; raw text and
        :class:`WhoisRecord` inputs are split into lines (the paper's
        setup) or normalized characters (char-grained domains such as
        citations).
        """
        if isinstance(record, LabeledRecord):
            return record.raw_lines
        text = record if isinstance(record, str) else record.text
        if self.featurizer.config.granularity == "char":
            from repro.whois.records import segment_chars

            return segment_chars(text)
        return text.splitlines()

    def _labelable(self, raw: list[str]) -> list[str]:
        """The units of ``raw`` that carry labels (all of them for char
        granularity -- delimiters are labeled so field values reassemble
        exactly)."""
        if self.featurizer.config.granularity == "char":
            return list(raw)
        return [ln for ln in raw if is_labelable(ln)]

    def predict_blocks(
        self, record: WhoisRecord | LabeledRecord | str
    ) -> list[str]:
        """First-level labels for each labelable line of the record."""
        raw = self._raw_lines(record)
        seq = self.featurizer.featurize_lines(raw)
        return self.block_crf.predict(seq)

    def predict_registrant_fields(self, lines: list[str]) -> list[str]:
        """Second-level labels for a contiguous registrant block."""
        if self.registrant_crf is None or not self.registrant_crf.is_fitted:
            raise RuntimeError("second-level CRF is not available")
        seq = self.featurizer.featurize_registrant_lines(lines)
        return self.registrant_crf.predict(seq)

    @property
    def _has_second_level(self) -> bool:
        return self.registrant_crf is not None and self.registrant_crf.is_fitted

    def label_lines(
        self, record: WhoisRecord | LabeledRecord | str
    ) -> list[tuple[str, str, str | None]]:
        """(line, block, sub) for each labelable line; sub only on registrant."""
        raw = self._raw_lines(record)
        lines = self._labelable(raw)
        # Featurize once; predict_blocks() would featurize a second time.
        blocks = self.block_crf.predict(self.featurizer.featurize_lines(raw))
        subs: list[str | None] = [None] * len(lines)
        if self._has_second_level:
            for start, end in _block_runs(blocks, self.spec.sub_block):
                segment = lines[start:end]
                for j, sub in enumerate(
                    self.predict_registrant_fields(segment)
                ):
                    subs[start + j] = sub
        return list(zip(lines, blocks, subs))

    def line_confidences(
        self, record: WhoisRecord | LabeledRecord | str
    ) -> list[tuple[str, str, float]]:
        """(line, predicted block, posterior probability) per line.

        The confidence is the CRF's posterior marginal ``Pr(y_t | x)`` for
        the Viterbi label -- useful for routing low-confidence records to a
        human labeler, the workflow Section 5.3 implies.
        """
        raw = self._raw_lines(record)
        lines = self._labelable(raw)
        if not lines:
            return []
        seq = self.featurizer.featurize_lines(raw)
        # One featurize/encode/potentials pass serves both Viterbi and
        # forward-backward (they used to run from scratch separately).
        blocks, marginals = self.block_crf.predict_with_marginals(seq)
        label_ids = self.block_crf.index.label_ids
        return [
            (line, block, float(marginals[t, label_ids[block]]))
            for t, (line, block) in enumerate(zip(lines, blocks))
        ]

    def _assemble(self, labeled: list[tuple[str, str, str | None]]) -> ParsedRecord:
        lines = [line for line, _, _ in labeled]
        blocks = [block for _, block, _ in labeled]
        spec = self.spec
        subs = [
            sub or spec.sub_default
            for _, block, sub in labeled
            if block == spec.sub_block
        ]
        return spec.assemble_record(lines, blocks, subs)

    def parse(self, record: WhoisRecord | LabeledRecord | str) -> ParsedRecord:
        """Full parse: label lines, then extract structured fields."""
        return self._assemble(self.label_lines(record))

    # ------------------------------------------------------------------
    # Bulk inference (the survey-scale path of Section 6)
    # ------------------------------------------------------------------

    def _encoders(self) -> tuple["LineEncoder", "LineEncoder | None"]:
        """The memoizing line encoders of the bulk path, built lazily.

        Cached encodings are only valid for the current vocabularies and
        lexicon, so ``fit``/``partial_fit`` drop them (see
        :class:`repro.parser.bulk.LineEncoder`).
        """
        if self._bulk_encoders is None:
            from repro.parser.bulk import LineEncoder

            profiles: dict = {}  # raw line analyses, shared across levels
            self._bulk_encoders = (
                LineEncoder(
                    self.featurizer, self.block_crf.index, profiles=profiles
                ),
                LineEncoder(
                    self.featurizer,
                    self.registrant_crf.index,
                    profiles=profiles,
                )
                if self._has_second_level
                else None,
            )
        return self._bulk_encoders

    def _map_sharded(
        self,
        worker,
        records: list,
        jobs: int,
        chunk_size: int,
        start_method: str | None = None,
    ):
        """Fan a bulk call out over ``jobs`` worker processes.

        Each worker runs the full single-process bulk pipeline on one
        contiguous shard (featurize, batch-decode both levels, assemble)
        and ships back only the small results -- the parser itself
        travels once per worker via the pool initializer.

        ``start_method`` pins the multiprocessing start method; by
        default ``fork`` is preferred (workers inherit the warm line
        caches copy-on-write) with a fallback to the platform default
        (``spawn`` on macOS/Windows), where the initializer pickles the
        parser once per worker -- small when the model was loaded with
        ``mmap=True``, since the weights pickle as a file descriptor
        rather than as bytes.
        """
        import multiprocessing as mp

        method = start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        bounds = [len(records) * i // jobs for i in range(jobs + 1)]
        shards = [
            (records[bounds[i]:bounds[i + 1]], chunk_size)
            for i in range(jobs)
        ]
        with ctx.Pool(
            jobs, initializer=_init_shard_worker, initargs=(self,)
        ) as pool:
            parts = pool.map(worker, shards)
        return [item for part in parts for item in part]

    def label_lines_many(
        self,
        records: TypingSequence[WhoisRecord | LabeledRecord | str],
        *,
        jobs: int = 1,
        chunk_size: int = 256,
        start_method: str | None = None,
    ) -> list[list[tuple[str, str, str | None]]]:
        """Bulk :meth:`label_lines` over many records.

        Produces exactly the per-record results, but runs each stage
        corpus-wide: every record's lines are featurized *and encoded*
        through the memoizing per-line cache, the first level decodes in
        one batched Viterbi pass, then *all* registrant segments are
        gathered into a single second-level batch.  With ``jobs > 1``
        the whole pipeline shards across processes (``start_method``
        optionally pins the multiprocessing start method; see
        :meth:`_map_sharded`).
        """
        records = list(records)
        if jobs > 1 and len(records) >= 2 * jobs:
            with obs.trace("parse.sharded_seconds", jobs=str(jobs)):
                return self._map_sharded(
                    _label_shard, records, jobs, chunk_size, start_method
                )
        block_encoder, registrant_encoder = self._encoders()
        lines_per: list[list[str]] = []
        encoded = []
        with obs.trace("parse.encode_seconds", level="block"):
            for record in records:
                lines: list[str] = []
                encoded.append(
                    block_encoder.encode_record(
                        self._raw_lines(record), collect=lines
                    )
                )
                lines_per.append(lines)
        with obs.trace("parse.decode_seconds", level="block"):
            blocks_per = self.block_crf.predict_many(
                encoded, chunk_size=chunk_size
            )
        subs_per: list[list[str | None]] = [
            [None] * len(lines) for lines in lines_per
        ]
        if registrant_encoder is not None:
            # Corpus-wide gather: one batch over every registrant segment.
            spans: list[tuple[int, int]] = []  # (record, start)
            segments = []
            with obs.trace("parse.encode_seconds", level="registrant"):
                for r, blocks in enumerate(blocks_per):
                    for start, end in _block_runs(blocks, self.spec.sub_block):
                        spans.append((r, start))
                        segments.append(
                            registrant_encoder.encode_lines(
                                lines_per[r][start:end]
                            )
                        )
            with obs.trace("parse.decode_seconds", level="registrant"):
                sub_labels = self.registrant_crf.predict_many(
                    segments, chunk_size=chunk_size
                )
            for (r, start), subs in zip(spans, sub_labels):
                subs_per[r][start:start + len(subs)] = subs
        self._flush_bulk_metrics(len(records))
        return [
            list(zip(lines, blocks, subs))
            for lines, blocks, subs in zip(lines_per, blocks_per, subs_per)
        ]

    def _flush_bulk_metrics(self, n_records: int) -> None:
        """Drain LineEncoder cache accounting into the installed registry.

        The encoders count hits/misses as plain ints on the hot path;
        this folds the per-batch deltas (and the cumulative hit rate)
        into ``repro.obs`` once per bulk call.  No registry, no work.
        """
        registry = obs.active()
        if registry is None or self._bulk_encoders is None:
            return
        block_encoder, registrant_encoder = self._bulk_encoders
        for encoder, level in (
            (block_encoder, "block"),
            (registrant_encoder, "registrant"),
        ):
            if encoder is None:
                continue
            hits, misses, full_skips = encoder.drain_cache_stats()
            if hits:
                registry.inc("parse.line_cache.hits", hits, level=level)
            if misses:
                registry.inc("parse.line_cache.misses", misses, level=level)
            if full_skips:
                registry.inc(
                    "parse.encoder_cache_full", full_skips, level=level
                )
            registry.set_gauge(
                "parse.line_cache.hit_rate", encoder.hit_rate, level=level
            )
            if encoder.warm_entries:
                registry.set_gauge(
                    "parse.encoder_cache_warm_entries",
                    encoder.warm_entries,
                    level=level,
                )
        from repro.crf.arena import get_arena

        registry.set_gauge("parse.arena_bytes", get_arena().nbytes)
        registry.observe("parse.batch_records", n_records)

    def encoder_cache_totals(self) -> tuple[int, int]:
        """Cumulative ``(hits, misses)`` across the bulk line encoders.

        Unlike :meth:`LineEncoder.drain_cache_stats` -- whose deltas
        :meth:`_flush_bulk_metrics` consumes per batch -- the totals here
        are monotonic for the life of the encoders, so an online consumer
        (the ``/metrics`` endpoint of :mod:`repro.serve`) can sync its own
        counters against them without racing the per-batch drain.
        """
        if self._bulk_encoders is None:
            return (0, 0)
        hits = misses = 0
        for encoder in self._bulk_encoders:
            if encoder is not None:
                hits += encoder.hits
                misses += encoder.misses
        return (hits, misses)

    def parse_many(
        self,
        records: TypingSequence[WhoisRecord | LabeledRecord | str],
        *,
        jobs: int = 1,
        chunk_size: int = 256,
        start_method: str | None = None,
    ) -> list[ParsedRecord]:
        """Bulk :meth:`parse`: identical :class:`ParsedRecord` outputs,
        batched end to end.

        This is the path the paper's Section 6 survey runs on -- parsing
        102M com records is ~400k chunks of this method, embarrassingly
        parallel across machines on top of the in-process ``jobs``
        sharding (``start_method`` optionally pins the multiprocessing
        start method; see :meth:`_map_sharded`).
        """
        records = list(records)
        if jobs > 1 and len(records) >= 2 * jobs:
            with obs.trace("parse.sharded_seconds", jobs=str(jobs)):
                return self._map_sharded(
                    _parse_shard, records, jobs, chunk_size, start_method
                )
        labeled_many = self.label_lines_many(records, chunk_size=chunk_size)
        with obs.trace("parse.assemble_seconds"):
            return [self._assemble(labeled) for labeled in labeled_many]

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def top_block_features(self, label: str, k: int = 10):
        """Table 1: heaviest word features for one block label."""
        return self.block_crf.top_observation_features(label, k)

    def top_transition_features(self, k: int = 20):
        """Figure 1: heaviest block-boundary transition features."""
        return self.block_crf.top_transition_features(k)

    def save(self, path: str | Path) -> None:
        """Persist everything inference needs: both CRFs, the featurizer
        configuration, and the frozen UNK lexicon (when one was built).

        A loaded parser is prediction-equivalent to the original --
        ``parse_many`` over any corpus produces identical records -- which
        is what the serving tier's model registry
        (:mod:`repro.serve.models`) relies on for hot-swap and rollback.
        """
        from dataclasses import asdict

        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        self.block_crf.save(path / "block")
        meta = {
            "domain": self.spec.name,
            "trained_on": self._trained_on,
            "has_second_level": self.registrant_crf is not None
            and self.registrant_crf.is_fitted,
            "featurizer_config": asdict(self.featurizer.config),
            "lexicon": (
                sorted(self.featurizer.lexicon.vocabulary)
                if self.featurizer.lexicon is not None
                else None
            ),
        }
        if meta["has_second_level"]:
            self.registrant_crf.save(path / "registrant")
        (path / "parser.json").write_text(json.dumps(meta))

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        mmap: bool = False,
        expect_domain: str | None = None,
    ) -> "WhoisParser":
        """Load a saved parser.

        With ``mmap=True`` both CRFs map their weight vectors read-only
        from the raw ``.npy`` snapshots (see :meth:`ChainCRF.load
        <repro.crf.ChainCRF.load>`): every process loading the same
        snapshot shares one physical copy of the weights, and pickling
        the parser to a spawned ``parse_many`` worker ships a small file
        descriptor instead of the arrays.

        The snapshot carries the domain it was trained for (snapshots
        from before domains were pluggable count as ``whois``); pass
        ``expect_domain`` to refuse snapshots of any other domain with a
        typed :class:`~repro.errors.DomainMismatch` instead of a shape
        crash deeper in the pipeline.
        """
        path = Path(path)
        meta = json.loads((path / "parser.json").read_text())
        snapshot_domain = meta.get("domain", "whois")
        if expect_domain is not None and snapshot_domain != expect_domain:
            raise errors.DomainMismatch(
                f"model snapshot at {path} was trained for domain "
                f"{snapshot_domain!r}, not {expect_domain!r}"
            )
        config = meta.get("featurizer_config")
        parser = cls(
            domain=snapshot_domain,
            featurizer_config=(
                FeaturizerConfig(**config) if config is not None else None
            ),
        )
        if meta.get("lexicon") is not None:
            from repro.whois.lexicon import Lexicon

            parser.featurizer.lexicon = Lexicon.from_vocabulary(
                meta["lexicon"]
            )
        parser.block_crf = ChainCRF.load(path / "block", mmap=mmap)
        if meta["has_second_level"]:
            parser.registrant_crf = ChainCRF.load(
                path / "registrant", mmap=mmap
            )
        else:
            parser.registrant_crf = None
        parser._trained_on = meta["trained_on"]
        return parser

    # ------------------------------------------------------------------
    # Encoder-cache persistence (warm starts)
    # ------------------------------------------------------------------

    def encoder_fingerprint(self) -> str:
        """Hash of everything the cached line encodings depend on.

        Covers the featurizer configuration, the frozen UNK lexicon, and
        both levels' observation/edge vocabularies: if any of these
        change, previously cached attribute ids are meaningless, so a
        persisted cache carrying a different fingerprint must be
        discarded.  Retrains that leave the vocabularies unchanged (the
        common maintenance-loop case) keep the fingerprint stable and
        the warm start valid.
        """
        import hashlib
        from dataclasses import asdict

        payload = {
            "domain": self.spec.name,
            "config": asdict(self.featurizer.config),
            "lexicon": (
                sorted(self.featurizer.lexicon.vocabulary)
                if self.featurizer.lexicon is not None
                else None
            ),
            "block": (
                [self.block_crf.index.obs_vocab,
                 self.block_crf.index.edge_vocab]
                if self.block_crf.index is not None
                else None
            ),
            "registrant": (
                [self.registrant_crf.index.obs_vocab,
                 self.registrant_crf.index.edge_vocab]
                if self._has_second_level
                else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def save_encoder_cache(self, path: str | Path) -> int:
        """Persist the warm line-encoder caches as fingerprinted JSON.

        Returns the number of line profiles written.  Loading the file
        back (:meth:`load_encoder_cache`) lets a restarted server, a
        freshly spawned shard worker, or a maintenance-loop retrain with
        unchanged vocabulary skip re-encoding the heavy-headed WHOIS
        line distribution from scratch.
        """
        block_encoder, registrant_encoder = self._encoders()
        state = {
            "fingerprint": self.encoder_fingerprint(),
            "block": block_encoder.cache_state(),
            "registrant": (
                registrant_encoder.cache_state()
                if registrant_encoder is not None
                else None
            ),
        }
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(state))
        tmp.replace(path)
        return len(state["block"]["lines"])

    def load_encoder_cache(self, path: str | Path) -> int:
        """Warm the line encoders from a :meth:`save_encoder_cache` file.

        Returns the number of line profiles loaded; ``0`` when the file
        is absent, unreadable, or was written under a different
        vocabulary fingerprint (stale caches are never applied).
        """
        path = Path(path)
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        if state.get("fingerprint") != self.encoder_fingerprint():
            return 0
        block_encoder, registrant_encoder = self._encoders()
        loaded = block_encoder.load_cache_state(state.get("block") or {})
        if registrant_encoder is not None and state.get("registrant"):
            loaded += registrant_encoder.load_cache_state(
                state["registrant"]
            )
        return loaded
