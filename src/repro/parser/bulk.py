"""Bulk featurize-and-encode machinery for survey-scale parsing.

The paper's headline workload (Section 6) parses 102M com records with an
already-trained model, so the prediction path has to move: per-record
featurization re-tokenizes every line from scratch, and per-record
``FeatureIndex.encode`` re-resolves every attribute string to an id.

WHOIS lines repeat massively across records of the same registrar schema
("Registrant Name:", "Domain Status: clientTransferProhibited", privacy
service boilerplate...), so :class:`LineEncoder` memoizes the entire
line -> encoded-attribute-ids computation per *distinct* line of text.  A
cache hit skips tokenization, separator splitting, word-classing, UNK
lookup, and vocabulary resolution in one go; only the cheap layout-context
attributes (``NL``/``SHL``/``SHR`` markers and ``CTX:`` header context),
which depend on neighboring lines, are appended per occurrence -- as
pre-resolved ids.

The resulting :class:`~repro.crf.features.EncodedSequence` objects feed
straight into :meth:`ChainCRF.predict_many`'s batched Viterbi without any
further per-token work.  Encodings are identical to
``index.encode(featurizer.featurize_lines(raw))`` up to attribute-id
order, which the decoder is invariant to (potentials are sums over the
id multiset, and the id sets match exactly).
"""

from __future__ import annotations

from repro.crf.features import EncodedSequence, FeatureIndex
from repro.whois.features import WhoisFeaturizer
from repro.whois.records import is_labelable
from repro.whois.text import indentation


class LineEncoder:
    """Memoizing ``line text -> encoded attribute ids`` for one index.

    One instance serves one ``(featurizer, FeatureIndex)`` pair: the
    cached ids are only valid for the vocabulary (and lexicon) they were
    resolved against, so :class:`~repro.parser.statistical.WhoisParser`
    rebuilds its encoders whenever the model is (re)fitted -- and the
    persisted form (:meth:`cache_state`) is keyed on a vocabulary
    fingerprint for exactly the same reason.

    The cache stores, per distinct line: the encoded intrinsic
    observation ids, the encoded intrinsic edge ids, the indentation
    depth, and the block-header headword -- everything about a line that
    does not depend on its neighbors.

    **Cap behavior**: every per-line dict (line profiles, labelability,
    raw analyses) is capped at ``cache_size`` distinct entries.  Once the
    cap is reached, *lookups* still hit but new lines stop being
    inserted -- they are re-analyzed on every occurrence.  WHOIS
    vocabulary is heavy-headed enough that the hot lines enter early, so
    a full cache usually still hits >90%; each skipped insertion is
    counted (:attr:`cache_full_skips`) and surfaced by the bulk parser
    as the ``parse.encoder_cache_full`` counter so a sustained miss
    regime is visible instead of silent.
    """

    def __init__(
        self,
        featurizer: WhoisFeaturizer,
        index: FeatureIndex,
        *,
        cache_size: int = 200_000,
        profiles: dict | None = None,
    ) -> None:
        self.featurizer = featurizer
        self.index = index
        self.cache_size = cache_size
        #: raw line -> (obs attrs, edge attrs, indent, headword), shareable
        #: between the block- and registrant-level encoders: the attribute
        #: strings are index-independent, so passing one dict to both
        #: spares the second level re-analyzing lines the first level
        #: already saw (every registrant line is also a block-level line).
        self._profiles: dict[
            str, tuple[list[str], list[str], int, str | None]
        ] = {} if profiles is None else profiles
        self._lines: dict[
            str, tuple[tuple[int, ...], tuple[int, ...], int, str | None]
        ] = {}
        self._ctx: dict[str, tuple[int, ...]] = {}
        #: line -> labelability; is_labelable() is a character scan and
        #: shows up at survey scale, so it is memoized alongside the
        #: profiles under the same cap.
        self._labelable: dict[str, bool] = {}
        #: cumulative cache accounting (plain ints on the hot path; the
        #: bulk parser drains deltas into ``repro.obs`` per batch)
        self.hits = 0
        self.misses = 0
        #: insertions skipped because a cache dict was at ``cache_size``
        self.cache_full_skips = 0
        #: entries loaded via :meth:`load_cache_state` (warm starts)
        self.warm_entries = 0
        self._drained_hits = 0
        self._drained_misses = 0
        self._drained_full_skips = 0
        obs_vocab, edge_vocab = index.obs_vocab, index.edge_vocab
        # Layout-marker ids, resolved once.  A marker absent from the
        # vocabulary encodes to nothing, exactly as FeatureIndex.encode
        # drops unknown attributes.
        self._nl = (obs_vocab.get("NL"), edge_vocab.get("NL"))
        self._shl = (obs_vocab.get("SHL"), edge_vocab.get("SHL"))
        self._shr = (obs_vocab.get("SHR"), edge_vocab.get("SHR"))
        #: char granularity: units are single characters, the intrinsic
        #: profile cache collapses to alphabet size, and per-record
        #: context attrs resolve through the memo dicts below
        self._char = featurizer.config.granularity == "char"
        self._ctx_obs_ids: dict[str, int | None] = {}
        self._ctx_edge_ids: dict[str, int | None] = {}

    # ------------------------------------------------------------------

    def _line_profile(
        self, line: str
    ) -> tuple[tuple[int, ...], tuple[int, ...], int, str | None]:
        profile = self._lines.get(line)
        if profile is None:
            self.misses += 1
            raw = self._profiles.get(line)
            if raw is None:
                obs, edge = self.featurizer.line_attributes(line)
                if self._char:
                    # Indentation and headwords are line-layout notions;
                    # a single-character unit has neither.
                    raw = (obs, edge, 0, None)
                else:
                    raw = (
                        obs,
                        edge,
                        indentation(line),
                        WhoisFeaturizer.headword(line),
                    )
                if len(self._profiles) < self.cache_size:
                    self._profiles[line] = raw
            obs, edge, indent, headword = raw
            obs_vocab = self.index.obs_vocab
            edge_vocab = self.index.edge_vocab
            profile = (
                tuple({obs_vocab[a] for a in obs if a in obs_vocab}),
                tuple({edge_vocab[a] for a in edge if a in edge_vocab}),
                indent,
                headword,
            )
            if len(self._lines) < self.cache_size:
                self._lines[line] = profile
            else:
                self.cache_full_skips += 1
        else:
            self.hits += 1
        return profile

    def _is_labelable(self, line: str) -> bool:
        """Memoized :func:`repro.whois.records.is_labelable`."""
        labelable = self._labelable.get(line)
        if labelable is None:
            labelable = is_labelable(line)
            if len(self._labelable) < self.cache_size:
                self._labelable[line] = labelable
        return labelable

    @property
    def hit_rate(self) -> float:
        """Cumulative cache hit rate over every line encoded so far."""
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def drain_cache_stats(self) -> tuple[int, int, int]:
        """(hits, misses, cap-skips) accrued since the previous drain."""
        hits = self.hits - self._drained_hits
        misses = self.misses - self._drained_misses
        full = self.cache_full_skips - self._drained_full_skips
        self._drained_hits = self.hits
        self._drained_misses = self.misses
        self._drained_full_skips = self.cache_full_skips
        return hits, misses, full

    def _ctx_ids(self, head: str) -> tuple[int, ...]:
        """Encoded ``CTX:<head>`` (+ ``CTX4:`` prefix) attributes."""
        ids = self._ctx.get(head)
        if ids is None:
            attrs = [f"CTX:{head}"]
            if self.featurizer.config.prefixes and len(head) >= 4:
                attrs.append(f"CTX4:{head[:4]}")
            vocab = self.index.obs_vocab
            ids = tuple(vocab[a] for a in attrs if a in vocab)
            self._ctx[head] = ids
        return ids

    def _encode_chars(
        self,
        units: list[str],
        collect: list[str] | None = None,
    ) -> EncodedSequence:
        """Char-granularity encoding, mirroring
        :meth:`WhoisFeaturizer.featurize_chars` attribute for attribute.

        The intrinsic per-character attributes come from the same profile
        cache as line mode (keyed on the character, so the cache tops out
        at alphabet size).  The record-dependent context attributes from
        :meth:`WhoisFeaturizer.char_context` are resolved through small
        attr -> id memo dicts -- the attribute *strings* vary per record
        but draw from the training vocabulary, so the memo converges
        fast; unknown attributes are memoized as ``None`` (known-absent)
        rather than re-probed.  Context and intrinsic namespaces are
        disjoint by construction, so ids concatenate without a dedup
        pass.
        """
        obs_flat: list[int] = []
        obs_counts: list[int] = []
        edge_seq: list[list[int]] = []
        obs_vocab = self.index.obs_vocab
        edge_vocab = self.index.edge_vocab
        obs_memo = self._ctx_obs_ids
        edge_memo = self._ctx_edge_ids
        cache_size = self.cache_size
        lines_get = self._lines.get
        _missing = object()  # memoized values are ids or None, never this
        for ch, (ctx_obs, ctx_edge) in zip(
            units, self.featurizer.char_context(units)
        ):
            if collect is not None:
                collect.append(ch)
            profile = lines_get(ch)
            if profile is None:
                profile = self._line_profile(ch)
            else:
                self.hits += 1
            start = len(obs_flat)
            obs_flat.extend(profile[0])
            for attr in ctx_obs:
                ident = obs_memo.get(attr, _missing)
                if ident is _missing:
                    ident = obs_vocab.get(attr)
                    if len(obs_memo) < cache_size:
                        obs_memo[attr] = ident
                if ident is not None:
                    obs_flat.append(ident)
            edge = list(profile[1])
            for attr in ctx_edge:
                ident = edge_memo.get(attr, _missing)
                if ident is _missing:
                    ident = edge_vocab.get(attr)
                    if len(edge_memo) < cache_size:
                        edge_memo[attr] = ident
                if ident is not None:
                    edge.append(ident)
            obs_counts.append(len(obs_flat) - start)
            edge_seq.append(edge)
        return EncodedSequence.from_packed(obs_flat, obs_counts, edge_seq)

    # ------------------------------------------------------------------

    def encode_record(
        self,
        raw_lines: list[str],
        collect: list[str] | None = None,
    ) -> EncodedSequence:
        """Encode one record's labelable lines, mirroring
        :meth:`WhoisFeaturizer.featurize_lines` attribute for attribute.

        Intrinsic ids come from the cache; the context-dependent layout
        and header attributes -- disjoint from every intrinsic attribute
        by construction (``NL``/``SHL``/``SHR`` and the ``CTX:`` prefix
        never occur in :meth:`line_attributes` output) -- are appended as
        pre-resolved ids, so no dedup pass is needed.

        ``collect``, when given, receives the labelable lines in order --
        the caller needs them anyway and this spares a second
        labelability scan over the record.

        Observation ids are accumulated directly into the packed form
        :class:`~repro.crf.features.EncodedSequence` shares with
        :class:`~repro.crf.batch.EncodedBatch` (one flat id list plus
        per-token counts), so batches built from these sequences never
        run a per-token loop.
        """
        if self._char:
            return self._encode_chars(raw_lines, collect)
        cfg = self.featurizer.config
        obs_flat: list[int] = []
        obs_counts: list[int] = []
        edge_seq: list[list[int]] = []
        blank_run = 0
        prev_indent: int | None = None
        header: tuple[str, int] | None = None
        # Local bindings: these two dict probes run once per input line at
        # survey scale, so the method-call indirection is inlined away.
        labelable_cache = self._labelable
        labelable_get = labelable_cache.get
        lines_get = self._lines.get
        cache_size = self.cache_size
        for line in raw_lines:
            labelable = labelable_get(line)
            if labelable is None:
                labelable = is_labelable(line)
                if len(labelable_cache) < cache_size:
                    labelable_cache[line] = labelable
            if not labelable:
                blank_run += 1
                continue
            if collect is not None:
                collect.append(line)
            profile = lines_get(line)
            if profile is None:
                profile = self._line_profile(line)
            else:
                self.hits += 1
            intrinsic_obs, intrinsic_edge, indent, headword = profile
            start = len(obs_flat)
            obs_flat.extend(intrinsic_obs)
            edge = list(intrinsic_edge)
            if cfg.markers:
                if blank_run > 0:
                    if self._nl[0] is not None:
                        obs_flat.append(self._nl[0])
                    if cfg.edge_markers and self._nl[1] is not None:
                        edge.append(self._nl[1])
                if prev_indent is not None:
                    shift = (
                        self._shl if indent < prev_indent
                        else self._shr if indent > prev_indent
                        else None
                    )
                    if shift is not None:
                        if shift[0] is not None:
                            obs_flat.append(shift[0])
                        if cfg.edge_markers and shift[1] is not None:
                            edge.append(shift[1])
                prev_indent = indent
            if cfg.header_context:
                if header is not None and indent > header[1]:
                    obs_flat.extend(self._ctx_ids(header[0]))
                else:
                    header = None
                if headword is not None:
                    header = (headword, indent)
            blank_run = 0
            obs_counts.append(len(obs_flat) - start)
            edge_seq.append(edge)
        return EncodedSequence.from_packed(obs_flat, obs_counts, edge_seq)

    def encode_lines(self, lines: list[str]) -> EncodedSequence:
        """Encode an already-filtered run of labelable lines.

        This is :meth:`encode_record` for the second-level segments: they
        are contiguous runs of labelable lines by construction, so the
        labelability checks and blank-run (``NL``) handling drop out;
        indentation shifts and header context within the run remain.
        """
        if self._char:
            return self._encode_chars(lines)
        cfg = self.featurizer.config
        obs_flat: list[int] = []
        obs_counts: list[int] = []
        edge_seq: list[list[int]] = []
        prev_indent: int | None = None
        header: tuple[str, int] | None = None
        lines_get = self._lines.get
        for line in lines:
            profile = lines_get(line)
            if profile is None:
                profile = self._line_profile(line)
            else:
                self.hits += 1
            intrinsic_obs, intrinsic_edge, indent, headword = profile
            start = len(obs_flat)
            obs_flat.extend(intrinsic_obs)
            edge = list(intrinsic_edge)
            if cfg.markers:
                if prev_indent is not None:
                    shift = (
                        self._shl if indent < prev_indent
                        else self._shr if indent > prev_indent
                        else None
                    )
                    if shift is not None:
                        if shift[0] is not None:
                            obs_flat.append(shift[0])
                        if cfg.edge_markers and shift[1] is not None:
                            edge.append(shift[1])
                prev_indent = indent
            if cfg.header_context:
                if header is not None and indent > header[1]:
                    obs_flat.extend(self._ctx_ids(header[0]))
                else:
                    header = None
                if headword is not None:
                    header = (headword, indent)
            obs_counts.append(len(obs_flat) - start)
            edge_seq.append(edge)
        return EncodedSequence.from_packed(obs_flat, obs_counts, edge_seq)

    # ------------------------------------------------------------------
    # Persistence (warm starts)
    # ------------------------------------------------------------------

    def cache_state(self) -> dict:
        """JSON-serializable snapshot of the per-line encoding caches.

        Captures the encoded line profiles and context ids -- the
        expensive, vocabulary-dependent part.  Validity is the caller's
        problem: :meth:`WhoisParser.save_encoder_cache
        <repro.parser.statistical.WhoisParser.save_encoder_cache>` wraps
        the state in a vocabulary fingerprint so a stale snapshot is
        discarded instead of silently mis-encoding.
        """
        return {
            "lines": [
                [line, list(obs), list(edge), indent, headword]
                for line, (obs, edge, indent, headword)
                in self._lines.items()
            ],
            "ctx": {head: list(ids) for head, ids in self._ctx.items()},
            "labelable": [
                [line, flag] for line, flag in self._labelable.items()
            ],
        }

    def load_cache_state(self, state: dict) -> int:
        """Warm the caches from a :meth:`cache_state` snapshot.

        Entries beyond ``cache_size`` are dropped.  Returns the number of
        line profiles loaded (also tracked as :attr:`warm_entries`).
        """
        loaded = 0
        for line, obs, edge, indent, headword in state.get("lines", []):
            if len(self._lines) >= self.cache_size:
                break
            if line not in self._lines:
                self._lines[line] = (
                    tuple(obs), tuple(edge), indent, headword
                )
                loaded += 1
        for head, ids in state.get("ctx", {}).items():
            self._ctx.setdefault(head, tuple(ids))
        for line, flag in state.get("labelable", []):
            if len(self._labelable) >= self.cache_size:
                break
            self._labelable.setdefault(line, flag)
        self.warm_entries += loaded
        return loaded
