"""WHOIS parsers: the paper's statistical parser and the baselines it beats.

All four implement the unified :class:`Parser` protocol --
``parse(record) -> ParsedRecord`` plus a bulk ``parse_many`` -- so the
survey, gateway, and evaluation code program against one contract:

- :class:`WhoisParser` -- the two-level CRF parser (Section 3), the paper's
  contribution; ``parse_many`` runs the batched survey-scale pipeline.
- :class:`RuleBasedParser` -- the hand-crafted rule base used for ground
  truth, with the "roll-back" needed by the Figure 2/3 comparison
  (Sections 4.2, 5.1).
- :class:`TemplateParser` -- a deft-whois-style per-registrar template
  parser with a crisp failure signal (Section 2.3).
- :class:`SimpleRegexParser` -- a pythonwhois-style generic rule parser
  (Section 2.3); its historical flat result survives as ``parse_simple``.
"""

from repro.parser.active import (
    active_learning_round,
    rank_by_uncertainty,
    select_for_labeling,
)
from repro.parser.api import Parser, ParserBase
from repro.parser.fields import ParsedRecord, parse_whois_date
from repro.parser.rules import RuleBasedParser
from repro.parser.simple import SimpleParseResult, SimpleRegexParser
from repro.parser.statistical import WhoisParser
from repro.parser.templates import TemplateMissingError, TemplateParser

__all__ = [
    "ParsedRecord",
    "Parser",
    "ParserBase",
    "RuleBasedParser",
    "SimpleParseResult",
    "SimpleRegexParser",
    "TemplateMissingError",
    "TemplateParser",
    "WhoisParser",
    "active_learning_round",
    "parse_whois_date",
    "rank_by_uncertainty",
    "select_for_labeling",
]
