"""The unified parser API.

Four parser families coexist in this repo -- the paper's two-level CRF
parser, the hand-crafted rule base, the per-registrar template parser,
and the generic regex parser -- and historically each exposed its own
calling convention.  :class:`Parser` is the one contract they all honor
now: ``parse`` maps a record (raw text or a structured record object) to
a :class:`~repro.parser.fields.ParsedRecord`, and ``parse_many`` is the
bulk entry point the survey/gateway paths program against, regardless of
whether the implementation batches (the CRF parser) or loops (everything
else, via :class:`ParserBase`).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.parser.fields import ParsedRecord


@runtime_checkable
class Parser(Protocol):
    """What every WHOIS parser looks like from the outside."""

    def parse(self, record) -> ParsedRecord:
        """One record (raw text or record object) -> structured fields."""
        ...

    def parse_many(self, records, *, jobs: int = 1) -> list[ParsedRecord]:
        """Bulk :meth:`parse`, one output per input, in order."""
        ...


class ParserBase:
    """Default ``parse_many``: a ``parse`` loop.

    Subclasses with a genuinely batched pipeline (the statistical parser)
    override this; for the baselines the loop *is* the honest
    implementation, and ``jobs`` is accepted for signature compatibility
    but ignored -- there is no per-record state worth sharding.
    """

    def parse(self, record) -> ParsedRecord:
        """One record -> structured fields; subclasses must implement."""
        raise NotImplementedError

    def parse_many(self, records: Sequence, *, jobs: int = 1) -> list[ParsedRecord]:
        """Bulk :meth:`parse` as a plain loop; ``jobs`` is ignored here."""
        return [self.parse(record) for record in records]
