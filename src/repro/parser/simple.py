"""A pythonwhois-style generic regex parser (Section 2.3).

Rule-based open-source parsers craft "a more general series of rules in the
form of regular expressions ... designed to match a variety of common WHOIS
structures (e.g., name:value formats)".  They achieve decent coverage of
mainstream formats but miss block styles and exotic layouts, and they have
no crisp failure signal.  The paper measures pythonwhois finding the
registrant on only 59% of records with a registrant field; this
re-implementation covers the mainstream ``Registrant Name:`` and ``owner:``
shapes (and a couple of bracket styles) while remaining blind to indented
block formats, reproducing that failure mode.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.parser.api import ParserBase
from repro.parser.fields import ParsedRecord, parse_whois_date
from repro.whois.records import LabeledRecord, WhoisRecord

_DOMAIN_PATTERNS: tuple[re.Pattern, ...] = (
    re.compile(r"^\s*Domain Name\s*\.*:?\s*\.*\s*(?P<v>\S+)\s*$",
               re.IGNORECASE | re.MULTILINE),
    re.compile(r"^\s*domain:\s*(?P<v>\S+)\s*$", re.IGNORECASE | re.MULTILINE),
)

_REGISTRANT_PATTERNS: tuple[re.Pattern, ...] = (
    re.compile(r"^\s*Registrant Name\s*\.*:?\s*\.*\s*(?P<v>.+?)\s*$",
               re.IGNORECASE | re.MULTILINE),
    re.compile(r"^\s*Registrant\s*\.+:?\s+(?P<v>.+?)\s*$", re.MULTILINE),
    re.compile(r"^\s*owner:\s*(?P<v>.+?)\s*$", re.IGNORECASE | re.MULTILINE),
    re.compile(r"^\[Registrant\]\s+(?P<v>.+?)\s*$", re.MULTILINE),
)

_ORG_PATTERNS: tuple[re.Pattern, ...] = (
    re.compile(r"^\s*Registrant Organi[sz]ation\s*\.*:?\s*\.*\s*(?P<v>.+?)\s*$",
               re.IGNORECASE | re.MULTILINE),
    re.compile(r"^\s*organization:\s*(?P<v>.+?)\s*$",
               re.IGNORECASE | re.MULTILINE),
)

_EMAIL_PATTERNS: tuple[re.Pattern, ...] = (
    re.compile(r"^\s*Registrant Email\s*\.*:?\s*\.*\s*(?P<v>\S+@\S+)\s*$",
               re.IGNORECASE | re.MULTILINE),
    re.compile(r"^\s*e-?mail:\s*(?P<v>\S+@\S+)\s*$",
               re.IGNORECASE | re.MULTILINE),
)

_DATE_PATTERNS: tuple[tuple[str, re.Pattern], ...] = (
    ("created", re.compile(
        r"^\s*(Creation Date|Created( on)?|created|Registration Date)"
        r"\s*\.*:?\s*\.*\s*(?P<v>.+?)\s*$",
        re.IGNORECASE | re.MULTILINE)),
    ("expires", re.compile(
        r"^\s*(Expir\w+ Date|Expires( on)?|expires|Renewal)"
        r"\s*\.*:?\s*\.*\s*(?P<v>.+?)\s*$",
        re.IGNORECASE | re.MULTILINE)),
)

_REGISTRAR_PATTERN = re.compile(
    r"^\s*(Sponsoring )?Registrar\s*\.*:?\s*\.*\s*(?P<v>.+?)\s*$",
    re.IGNORECASE | re.MULTILINE,
)


@dataclass
class SimpleParseResult:
    registrant_name: str | None = None
    registrant_org: str | None = None
    registrant_email: str | None = None
    registrar: str | None = None
    created: str | None = None
    expires: str | None = None

    @property
    def found_registrant(self) -> bool:
        return self.registrant_name is not None


class SimpleRegexParser(ParserBase):
    """Generic regex extraction over raw WHOIS text.

    :meth:`parse` follows the unified :class:`~repro.parser.api.Parser`
    protocol (any record form in, :class:`ParsedRecord` out);
    :meth:`parse_simple` is the historical flat result for callers that
    want the raw matched strings.
    """

    @staticmethod
    def _text(record: WhoisRecord | LabeledRecord | str) -> str:
        return record if isinstance(record, str) else record.text

    def parse_simple(self, text: str) -> SimpleParseResult:
        result = SimpleParseResult()
        result.registrant_name = self._first(_REGISTRANT_PATTERNS, text)
        result.registrant_org = self._first(_ORG_PATTERNS, text)
        result.registrant_email = self._first(_EMAIL_PATTERNS, text)
        registrar = _REGISTRAR_PATTERN.search(text)
        if registrar:
            result.registrar = registrar.group("v")
        for name, pattern in _DATE_PATTERNS:
            match = pattern.search(text)
            if match:
                setattr(result, name, match.group("v"))
        return result

    def parse(self, record: WhoisRecord | LabeledRecord | str) -> ParsedRecord:
        text = self._text(record)
        simple = self.parse_simple(text)
        domain = self._first(_DOMAIN_PATTERNS, text)
        registrant = {
            key: value
            for key, value in (
                ("name", simple.registrant_name),
                ("org", simple.registrant_org),
                ("email", simple.registrant_email),
            )
            if value is not None
        }
        return ParsedRecord(
            domain=domain.lower() if domain else None,
            registrar=simple.registrar,
            created=parse_whois_date(simple.created) if simple.created else None,
            expires=parse_whois_date(simple.expires) if simple.expires else None,
            registrant=registrant,
        )

    @staticmethod
    def _first(patterns: tuple[re.Pattern, ...], text: str) -> str | None:
        for pattern in patterns:
            match = pattern.search(text)
            if match:
                value = match.group("v").strip()
                if value:
                    return value
        return None

    def registrant_accuracy(self, records) -> float:
        """Fraction of labeled records whose registrant name is recovered.

        Mirrors the paper's §2.3 methodology: filter to records that *have*
        a registrant name line, then check the extracted name matches the
        ground truth.
        """
        checked = correct = 0
        for record in records:
            gold = None
            for line in record.lines:
                if line.block == "registrant" and line.sub == "name":
                    gold = line.text
                    break
            if gold is None:
                continue
            checked += 1
            got = self.parse_simple(record.text).registrant_name
            if got and got.lower().strip() in gold.lower():
                correct += 1
        return correct / checked if checked else 0.0
