"""The hand-crafted rule-based parser with roll-back (Sections 4.2, 5.1).

The paper's authors manually built a rule-based parser, iterating "until
[it] was able to completely label the entries in our test corpus", then
compared it against the CRF by *rolling it back*: retaining only the rules
necessary to label a given training subset.  This module reproduces that
parser for the synthetic corpus:

- a prioritized table of block rules keyed on field titles, value words,
  line shapes, and layout markers;
- contextual "header" rules (a bare ``Registrant:`` opens a block that
  following indented lines inherit), the paper's "field title appears alone
  with the following block representing the associated value";
- structural always-on behaviour (symbol lines are boilerplate, unmatched
  lines inherit the previous label) that "cannot be rolled back";
- a second rule table for registrant sub-fields.

``fit(records)`` performs the roll-back: it runs the full engine over the
training records and keeps only the rules that fired.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.parser.api import ParserBase
from repro.parser.fields import ParsedRecord, assemble_record
from repro.whois.records import LabeledRecord, WhoisRecord, is_labelable
from repro.whois.text import (
    detect_symbol_start,
    indentation,
    split_title_value,
    tokenize,
    word_classes,
)


@dataclass(frozen=True)
class LineContext:
    """Pre-analyzed view of one labelable line."""

    text: str
    title: str  # normalized (lowercase, collapsed spaces); "" if no separator
    title_words: frozenset[str]
    value: str
    value_words: frozenset[str]
    has_separator: bool
    indent: int
    symbol: bool
    classes: frozenset[str]


def analyze_line(line: str) -> LineContext:
    """Tokenize one raw line into the LineContext the rules match on."""
    split = split_title_value(line)
    if split is not None:
        title_raw, value, _kind = split
        title = " ".join(tokenize(title_raw))
        value = value.strip()
        has_sep = True
    else:
        title, value, has_sep = "", line.strip(), False
    return LineContext(
        text=line,
        title=title,
        title_words=frozenset(tokenize(title)),
        value=value,
        value_words=frozenset(tokenize(value)),
        has_separator=has_sep,
        indent=indentation(line),
        symbol=detect_symbol_start(line),
        classes=frozenset(word_classes(value or line)),
    )


#: a predicate returns False (no match), True (match), or the set of
#: keywords that matched (for per-keyword roll-back granularity)
Predicate = Callable[[LineContext], "bool | frozenset[str]"]


@dataclass(frozen=True)
class Rule:
    """One parsing rule: a predicate plus the label it assigns.

    Keyword rules (built with :func:`title_has_any` /
    :func:`bare_value_has`) roll back *per keyword*: the real parser's rule
    base grew one handcrafted pattern at a time, so exposure to
    ``Registrant Name:`` must not grant knowledge of ``owner:`` records.
    """

    rule_id: str
    label: str
    predicate: Predicate
    #: header rules open a context that following lines may inherit
    opens_context: bool = False
    #: structural rules survive roll-back (the paper notes some rules
    #: "cannot be rolled back")
    structural: bool = False

    def fired_ids(self, result: "bool | frozenset[str]") -> list[str]:
        """The fine-grained ids a (truthy) match exercises."""
        if isinstance(result, frozenset):
            return [f"{self.rule_id}:{word}" for word in sorted(result)]
        return [self.rule_id]

    def usable(
        self, result: "bool | frozenset[str]", enabled: set[str] | None
    ) -> bool:
        """Whether a rolled-back parser may apply this (truthy) match."""
        if enabled is None or self.structural:
            return True
        return any(fid in enabled for fid in self.fired_ids(result))


# ----------------------------------------------------------------------
# Predicate factories
# ----------------------------------------------------------------------


def title_has(*words: str) -> Predicate:
    """All of ``words`` appear among the field-title tokens."""
    required = frozenset(words)
    return lambda ctx: required <= ctx.title_words


def title_has_any(*words: str) -> Predicate:
    """At least one of ``words`` appears in the title; returns the hits."""
    options = frozenset(words)

    def predicate(ctx: LineContext) -> bool | frozenset[str]:
        matched = options & ctx.title_words
        return frozenset(matched) if matched else False

    return predicate


def title_is(phrase: str) -> Predicate:
    """The normalized field title equals ``phrase`` exactly."""
    return lambda ctx: ctx.title == phrase


def title_startswith(prefix: str) -> Predicate:
    """The normalized field title starts with ``prefix``."""
    return lambda ctx: ctx.title.startswith(prefix)


def bare_value_has(*words: str, max_words: int = 3) -> Predicate:
    """Keywords on a short separator-less line (block headers like
    ``[Registrant]`` or ``REGISTRANT CONTACT``).

    Restricted to short lines: header detection must not swallow
    fixed-width data lines such as ``Registrant Name    John Smith``.
    """
    options = frozenset(words)

    def predicate(ctx: LineContext) -> bool | frozenset[str]:
        if ctx.has_separator or len(ctx.value_words) > max_words:
            return False
        matched = options & ctx.value_words
        return frozenset(matched) if matched else False

    return predicate


def value_matches(pattern: str) -> Predicate:
    """The value side matches ``pattern`` (case-insensitive search)."""
    compiled = re.compile(pattern, re.IGNORECASE)
    return lambda ctx: bool(compiled.search(ctx.value))


def line_matches(pattern: str) -> Predicate:
    """The whole raw line matches ``pattern`` (case-insensitive)."""
    compiled = re.compile(pattern, re.IGNORECASE)
    return lambda ctx: bool(compiled.search(ctx.text))


def all_of(*predicates: Predicate) -> Predicate:
    """Conjunction: every sub-predicate must accept the line."""
    return lambda ctx: all(p(ctx) for p in predicates)


def has_class(name: str) -> Predicate:
    """The line carries character-class tag ``name`` (date, email, ...)."""
    return lambda ctx: name in ctx.classes


def is_symbol(ctx: LineContext) -> bool:
    """Separator/boilerplate line made of symbols, never a field."""
    return ctx.symbol


# ----------------------------------------------------------------------
# First-level (block) rule table.  Order = priority.
# ----------------------------------------------------------------------

_DATE_TITLE_WORDS = (
    "created", "creation", "create", "updated", "update", "expires",
    "expiry", "expiration", "renewal", "modified", "registered", "date",
    "till", "until", "paid", "valid",
)

BLOCK_RULES: tuple[Rule, ...] = (
    # --- boilerplate first: symbol lines are never field data.  Only lines
    #     whose symbol starts in column 0 count: indented "+1.555..." phone
    #     lines inside contact blocks are data, not banners.
    Rule("null.symbol", "null",
         all_of(is_symbol, lambda ctx: ctx.indent == 0),
         structural=True),
    Rule("null.icann", "null", title_has("icann")),
    Rule("null.notice", "null", title_has_any("notice")),
    Rule(
        "null.legalese",
        "null",
        all_of(
            lambda ctx: not ctx.has_separator,
            lambda ctx: ctx.indent == 0,
            lambda ctx: len(ctx.value_words & {
                "information", "purposes", "provided", "database", "whois",
                "guarantee", "accuracy", "notice", "terms", "authorized",
                "automated", "processes", "query", "queries", "reserves",
                "advertising", "visit", "please", "register", "happy",
                "rate", "limited", "solely", "unsolicited", "assist",
                "obtaining", "related", "registration", "find", "data",
            }) >= 2,
        ),
    ),
    # --- bare name-server lines before anything keyed on words (their
    #     hostnames often contain words like "registrar")
    Rule("domain.ns_shape", "domain",
         all_of(lambda ctx: not ctx.has_separator,
                line_matches(r"^\s*(ns|dns)\d+\.\S+\.[a-z]{2,6}\s*$"))),
    # --- other contacts before anything else ("admin name" must not hit
    #     the registrant "name" rules)
    Rule(
        "other.contacts",
        "other",
        title_has_any("admin", "administrative", "tech", "technical",
                      "billing"),
        opens_context=True,
    ),
    Rule(
        "other.contact_header",
        "other",
        bare_value_has("administrative", "technical", "billing"),
        opens_context=True,
    ),
    Rule("other.contact_info", "other", title_is("contact information"),
         opens_context=True),
    Rule("other.admin_c", "other",  # admin-c / tech-c / billing-c handles
         lambda ctx: ctx.title in ("admin c", "tech c", "billing c")),
    Rule("other.gmo_contact", "other",
         line_matches(r"^(Admin|Tech) contact:")),
    # --- dates (before domain/registrar: "Domain Expiration Date",
    #     "Registrar Registration Expiration Date")
    Rule("date.title", "date", title_has_any(*_DATE_TITLE_WORDS)),
    Rule("date.changed", "date", title_has_any("changed")),
    Rule(
        "date.record_phrase",
        "date",
        line_matches(r"^\s*(record|database last|domain) "
                     r"(created|expires|updated|last updated)( on)?\b"),
    ),
    Rule("date.renewal_due", "date", line_matches(r"^\s*renewal due\b")),
    Rule("date.rrp", "date",
         title_has_any("createddate", "updateddate",
                       "registrationexpirationdate")),
    Rule("date.header", "date", bare_value_has("dates"), opens_context=True),
    Rule("date.bracket", "date",
         line_matches(r"^\[(created|expires|last updated) on?\]|^\[last updated\]")),
    # --- registrar
    Rule(
        "registrar.title", "registrar",
        title_has_any("registrar", "reseller"),
    ),
    Rule(
        "registrar.provided_by", "registrar",
        title_startswith("registration service provided"),
    ),
    Rule(
        "registrar.provider", "registrar",
        title_is("registration service provider"),
        opens_context=True,
    ),
    Rule("registrar.whois_server", "registrar", title_is("whois server")),
    Rule("registrar.referral", "registrar", title_is("referral url")),
    Rule("registrar.visit", "registrar", title_is("visit")),
    Rule(
        "registrar.contact_email", "registrar",
        all_of(title_is("contact"), has_class("CLS:email")),
    ),
    Rule("registrar.source", "registrar", title_is("source")),
    Rule("registrar.header", "registrar", bare_value_has("registrar"),
         opens_context=True),
    Rule("registrar.registered_through", "registrar",
         line_matches(r"is registered through")),
    # --- registrant
    Rule(
        "registrant.title", "registrant",
        title_has_any("registrant", "owner", "holder", "person"),
        opens_context=True,
    ),
    Rule(
        "registrant.organisation", "registrant",
        title_has_any("organisation"),
    ),
    Rule(
        "registrant.org_header", "registrant",
        title_is("organization"),
        opens_context=True,
    ),
    Rule(
        "registrant.header", "registrant",
        bare_value_has("registrant", "owner", "holder"),
        opens_context=True,
    ),
    Rule(
        "registrant.holder_phrase", "registrant",
        line_matches(r"^holder of (the )?domain"),
        opens_context=True,
    ),
    Rule("registrant.rrp", "registrant", title_has_any("ownercontact")),
    Rule("other.rrp", "other",
         title_has_any("admincontact", "techcontact", "billingcontact")),
    # --- domain
    Rule("domain.title", "domain",
         title_has_any("domain", "dnssec", "punycode", "dns")),
    Rule("domain.status", "domain", title_has_any("status", "flags")),
    Rule("domain.ns_title", "domain",
         title_has_any("nserver", "nameserver", "nameservers", "host")),
    Rule("domain.ns_numbered", "domain",
         line_matches(r"^\s*(property\[)?(ns|nameserver)\d+\]?:")),
    Rule("domain.ns_words", "domain", title_has("name", "server")),
    Rule("domain.ns_header", "domain",
         all_of(lambda ctx: ctx.title in ("name servers", "hosts"),
                lambda ctx: not ctx.value),
         opens_context=True),
    Rule("domain.servers_header", "domain",
         line_matches(r"domain servers in listed order"),
         opens_context=True),
    Rule("domain.header", "domain",
         bare_value_has("domain", "dns", "server", "nameserver", "status"),
         opens_context=True),
)

#: ids of structural fallbacks that exist even in a fully rolled-back parser
INHERIT_RULE_ID = "structural.inherit"
DEFAULT_RULE_ID = "structural.default"


# ----------------------------------------------------------------------
# Second-level (registrant sub-field) rules
# ----------------------------------------------------------------------

_COUNTRY_WORDS = frozenset(
    word
    for name in (
        "united states", "china", "united kingdom", "germany", "france",
        "canada", "spain", "australia", "japan", "india", "turkey",
        "vietnam", "russia", "hong kong", "netherlands", "italy", "brazil",
        "korea", "sweden", "poland", "mexico", "switzerland", "denmark",
        "norway", "israel", "usa", "uk", "deutschland", "espana",
    )
    for word in name.split()
)

SUB_RULES: tuple[Rule, ...] = (
    Rule("sub.id", "id", title_has_any("id", "handle")),
    Rule("sub.fax", "fax", title_has_any("fax")),
    Rule("sub.email", "email", title_has_any("email", "mail")),
    Rule("sub.phone", "phone",
         title_has_any("phone", "tel", "voice", "telephone")),
    Rule("sub.postcode", "postcode",
         title_has_any("postal", "zip", "pcode", "zipcode", "postcode")),
    Rule("sub.country", "country", title_has_any("country")),
    Rule("sub.state", "state", title_has_any("state", "province")),
    Rule("sub.city", "city", title_has_any("city")),
    Rule("sub.street", "street",
         title_has_any("street", "address", "address1", "address2",
                       "location")),
    Rule("sub.org", "org",
         title_has_any("organization", "organisation", "org",
                       "cooperative")),
    Rule("sub.name", "name", title_has_any("name", "individual")),
    Rule("sub.header", "other",
         all_of(lambda ctx: ctx.has_separator, lambda ctx: not ctx.value)),
    # shape rules for bare block-style lines
    Rule("sub.bare_email", "email",
         all_of(lambda ctx: not ctx.title, has_class("CLS:email"))),
    Rule("sub.bare_phone", "phone",
         all_of(lambda ctx: not ctx.title, has_class("CLS:phone"),
                lambda ctx: "CLS:fivedigit" not in ctx.classes)),
    Rule("sub.bare_city_state_zip", "city",
         all_of(lambda ctx: not ctx.title,
                line_matches(r"[A-Za-z]+.*,\s*[A-Z]{2,}.*\b\S{4,8}$"))),
    Rule("sub.bare_country", "country",
         all_of(lambda ctx: not ctx.has_separator,
                lambda ctx: bool(ctx.value_words)
                and ctx.value_words <= _COUNTRY_WORDS)),
    Rule("sub.bare_country_code", "country",
         all_of(lambda ctx: not ctx.has_separator,
                line_matches(r"^\s*[A-Z]{2}\s*$"))),
    Rule("sub.bare_street", "street",
         all_of(lambda ctx: not ctx.title,
                line_matches(r"^\s*\d+\s+[A-Za-z]"))),
    Rule("sub.bare_postcode", "postcode",
         all_of(lambda ctx: not ctx.title, has_class("CLS:fivedigit"))),
    Rule("sub.bare_org", "org",
         all_of(lambda ctx: not ctx.title,
                value_matches(r"\b(llc|inc|ltd|gmbh|corp|co|pty|kk|bv|sa)\b"
                              r"\.?$"))),
    Rule("sub.bare_name", "name",
         all_of(lambda ctx: not ctx.title,
                line_matches(r"^\s*[A-Za-z][A-Za-z.'-]*"
                             r"(\s+[A-Za-z][A-Za-z.'-]*){1,3}\s*(\(.*\))?$"))),
)

SUB_DEFAULT = "other"


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass
class _Assignment:
    label: str
    rule_id: str


class _RuleEngine:
    """Applies a rule table with header contexts and inheritance."""

    def __init__(self, rules: Iterable[Rule], enabled: set[str] | None) -> None:
        self.rules = list(rules)
        self.enabled = enabled

    @property
    def n_rules(self) -> int:
        if self.enabled is None:
            return len(self.rules)
        return sum(1 for r in self.rules if r.structural) + len(self.enabled)

    def label_lines(
        self, lines: list[str], fired: set[str] | None = None
    ) -> list[_Assignment]:
        """Label lines; optionally record every fine-grained rule id fired."""
        assignments: list[_Assignment] = []
        context_label: str | None = None
        context_indent = 0
        previous: _Assignment | None = None
        for line in lines:
            ctx = analyze_line(line)
            matched: Rule | None = None
            result: bool | frozenset = False
            for rule in self.rules:
                candidate = rule.predicate(ctx)
                if candidate and rule.usable(candidate, self.enabled):
                    matched, result = rule, candidate
                    break
            if matched is not None:
                assignment = _Assignment(matched.label, matched.rule_id)
                if fired is not None:
                    fired.update(matched.fired_ids(result))
                if matched.opens_context:
                    context_label = matched.label
                    context_indent = ctx.indent
                elif ctx.indent <= context_indent:
                    context_label = None
            elif context_label is not None and ctx.indent > context_indent:
                assignment = _Assignment(context_label, INHERIT_RULE_ID)
            elif previous is not None:
                assignment = _Assignment(previous.label, INHERIT_RULE_ID)
            else:
                assignment = _Assignment("null", DEFAULT_RULE_ID)
            assignments.append(assignment)
            previous = assignment
        return assignments


class RuleBasedParser(ParserBase):
    """The paper's rule-based comparison parser.

    An unfitted parser uses the *full* rule base (the authors' final,
    fully-iterated parser).  ``fit(records)`` rolls the parser back to the
    rules exercised by ``records``, exactly the handicapping protocol of
    Section 5.1.
    """

    def __init__(self) -> None:
        """Start with the full, fully-iterated rule base enabled."""
        self._enabled_blocks: set[str] | None = None
        self._enabled_subs: set[str] | None = None

    # -- training -------------------------------------------------------

    def fit(self, records: Iterable[LabeledRecord]) -> "RuleBasedParser":
        """Roll back to the rules needed for ``records``."""
        full_engine = _RuleEngine(BLOCK_RULES, None)
        full_sub_engine = _RuleEngine(SUB_RULES, None)
        fired: set[str] = set()
        sub_fired: set[str] = set()
        for record in records:
            lines = [line.text for line in record.lines]
            full_engine.label_lines(lines, fired=fired)
            for segment in self._segments(record):
                full_sub_engine.label_lines(segment, fired=sub_fired)
        self._enabled_blocks = fired
        self._enabled_subs = sub_fired
        return self

    def add_records(self, records: Iterable[LabeledRecord]) -> "RuleBasedParser":
        """Enable any additional rules the new records exercise.

        This is the *best case* for rule maintenance -- in reality a human
        must write new rules by hand; here the full rule base already covers
        the synthetic corpus, so exposure is all that is modeled.
        """
        if self._enabled_blocks is None:
            return self
        extra = RuleBasedParser().fit(records)
        self._enabled_blocks |= extra._enabled_blocks or set()
        self._enabled_subs |= extra._enabled_subs or set()
        return self

    @staticmethod
    def _segments(record: LabeledRecord) -> list[list[str]]:
        segments, current = [], []
        for line in record.lines:
            if line.block == "registrant":
                current.append(line.text)
            elif current:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        return segments

    # -- inference ------------------------------------------------------

    @property
    def n_block_rules(self) -> int:
        """Count of currently enabled first-level (block) rules."""
        return _RuleEngine(BLOCK_RULES, self._enabled_blocks).n_rules

    @staticmethod
    def _raw_lines(record: WhoisRecord | LabeledRecord | str) -> list[str]:
        if isinstance(record, str):
            return record.splitlines()
        if isinstance(record, LabeledRecord):
            return record.raw_lines
        return record.lines

    def predict_blocks(
        self, record: WhoisRecord | LabeledRecord | str
    ) -> list[str]:
        """First-level block label for every labelable line."""
        lines = [ln for ln in self._raw_lines(record) if is_labelable(ln)]
        engine = _RuleEngine(BLOCK_RULES, self._enabled_blocks)
        return [a.label for a in engine.label_lines(lines)]

    def predict_registrant_fields(self, lines: list[str]) -> list[str]:
        """Second-level sub-field labels for a registrant block."""
        engine = _RuleEngine(SUB_RULES, self._enabled_subs)
        labels = []
        for assignment in engine.label_lines(lines):
            if assignment.rule_id in (INHERIT_RULE_ID, DEFAULT_RULE_ID):
                labels.append(SUB_DEFAULT)
            else:
                labels.append(assignment.label)
        return labels

    def label_lines(
        self, record: WhoisRecord | LabeledRecord | str
    ) -> list[tuple[str, str, str | None]]:
        """(line, block, sub-field) triples for every labelable line."""
        lines = [ln for ln in self._raw_lines(record) if is_labelable(ln)]
        blocks = self.predict_blocks(record)
        subs: list[str | None] = [None] * len(lines)
        start = None
        for i, block in enumerate(blocks + ["<end>"]):
            if block == "registrant" and start is None:
                start = i
            elif block != "registrant" and start is not None:
                segment = lines[start:i]
                for j, sub in enumerate(self.predict_registrant_fields(segment)):
                    subs[start + j] = sub
                start = None
        return list(zip(lines, blocks, subs))

    def parse(self, record: WhoisRecord | LabeledRecord | str) -> ParsedRecord:
        """Label every line, then assemble the structured record."""
        labeled = self.label_lines(record)
        lines = [line for line, _, _ in labeled]
        blocks = [block for _, block, _ in labeled]
        subs = [sub or "other" for _, block, sub in labeled
                if block == "registrant"]
        return assemble_record(lines, blocks, subs)
