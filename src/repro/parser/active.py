"""Active learning for parser maintenance.

Section 5.3's workflow is: deploy the parser, notice records it gets
wrong, label a handful, retrain.  At com scale nobody can eyeball 100M
records, so the missing piece is *finding* the records worth labeling.
This module ranks unlabeled records by the model's own uncertainty --
records whose least-confident line has low posterior probability are the
ones most likely to use an unfamiliar template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.parser.statistical import WhoisParser
from repro.whois.records import LabeledRecord, WhoisRecord


@dataclass(frozen=True)
class UncertainRecord:
    """One candidate for labeling, with its uncertainty scores."""

    index: int
    min_confidence: float  # posterior of the least certain line
    mean_confidence: float

    @property
    def uncertainty(self) -> float:
        """Selection score: one minus the weakest line posterior."""
        return 1.0 - self.min_confidence


def rank_by_uncertainty(
    parser: WhoisParser,
    records: Sequence[WhoisRecord | LabeledRecord | str],
) -> list[UncertainRecord]:
    """All records ranked most-uncertain first."""
    scored: list[UncertainRecord] = []
    for index, record in enumerate(records):
        confidences = [
            probability
            for _line, _block, probability in parser.line_confidences(record)
        ]
        if not confidences:
            continue
        scored.append(
            UncertainRecord(
                index=index,
                min_confidence=min(confidences),
                mean_confidence=sum(confidences) / len(confidences),
            )
        )
    scored.sort(key=lambda r: (r.min_confidence, r.mean_confidence))
    return scored


def select_for_labeling(
    parser: WhoisParser,
    records: Sequence[WhoisRecord | LabeledRecord | str],
    k: int,
    *,
    min_confidence_threshold: float = 0.995,
) -> list[int]:
    """Indices of the ``k`` records most worth labeling next.

    Records whose every line is already predicted above
    ``min_confidence_threshold`` are skipped entirely -- labeling them
    teaches the model nothing.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = rank_by_uncertainty(parser, records)
    chosen = [
        r.index for r in ranked if r.min_confidence < min_confidence_threshold
    ]
    return chosen[:k]


def most_informative(
    parser: WhoisParser,
    records: Sequence[WhoisRecord | LabeledRecord | str],
) -> int | None:
    """Index of the single most-informative record, or None when empty.

    This is the §5.3 labeling budget taken to its limit: the maintenance
    loop (:mod:`repro.pipeline`) asks for exactly one label per detected
    schema family, and this picks which record earns it -- the one whose
    least-confident line the current model is most unsure about.
    """
    ranked = rank_by_uncertainty(parser, records)
    return ranked[0].index if ranked else None


def active_learning_round(
    parser: WhoisParser,
    pool: Sequence[LabeledRecord],
    k: int,
    *,
    replay: Iterable[LabeledRecord] = (),
) -> list[int]:
    """One label-and-retrain round: select, 'label' (ground truth is known
    for the pool), and partial_fit.  Returns the selected indices."""
    selected = select_for_labeling(parser, pool, k)
    if selected:
        parser.partial_fit([pool[i] for i in selected], replay=list(replay))
    return selected
