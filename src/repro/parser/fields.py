"""Post-processing labeled lines into structured fields.

Once the CRFs (or a baseline parser) have labeled every line, this module
turns the labels into the record a downstream consumer wants: the
registrar, the dates, the name servers, and the registrant contact -- the
"database of the fields extracted by the parser" that Section 6 builds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date
from functools import lru_cache

from repro.whois.text import split_title_value

_MONTHS = {m: i + 1 for i, m in enumerate(
    ("jan", "feb", "mar", "apr", "may", "jun",
     "jul", "aug", "sep", "oct", "nov", "dec"))}

_DATE_PATTERNS = (
    # 2014-03-05 / 2014/03/05 / 2014.03.05 (optionally with time / T suffix)
    re.compile(r"(?P<y>\d{4})[-/.](?P<m>\d{1,2})[-/.](?P<d>\d{1,2})"),
    # 05-Mar-2014 / 05 Mar 2014 / 05.mar.2014
    re.compile(r"(?P<d>\d{1,2})[-. ](?P<mon>[a-z]{3})[a-z]*[-. ](?P<y>\d{4})",
               re.IGNORECASE),
    # Mar 5, 2014 / March 5, 2014
    re.compile(r"(?P<mon>[a-z]{3})[a-z]*\.? (?P<d>\d{1,2}),? (?P<y>\d{4})",
               re.IGNORECASE),
    # 03/05/2014 (US order)
    re.compile(r"(?P<m>\d{1,2})/(?P<d>\d{1,2})/(?P<y>\d{4})"),
)


@lru_cache(maxsize=65536)
def parse_whois_date(text: str) -> date | None:
    """Best-effort parse of the date formats seen across registrars."""
    for pattern in _DATE_PATTERNS:
        match = pattern.search(text)
        if not match:
            continue
        groups = match.groupdict()
        year = int(groups["y"])
        if "mon" in groups and groups.get("mon"):
            month = _MONTHS.get(groups["mon"][:3].lower())
            if month is None:
                continue
        else:
            month = int(groups["m"])
        day = int(groups["d"])
        try:
            return date(year, month, day)
        except ValueError:
            continue
    return None


_DOMAIN_RE = re.compile(r"(?<![\w.-])([a-z0-9-]+\.)+[a-z]{2,6}(?![\w-])",
                        re.IGNORECASE)
_NS_TITLE = re.compile(r"(name\s*server|nserver|nameserver|domain server|host)",
                       re.IGNORECASE)
_CREATED = re.compile(r"creat|registered|registration date", re.IGNORECASE)
_EXPIRES = re.compile(r"expir|renewal", re.IGNORECASE)
_UPDATED = re.compile(r"updat|modif|changed", re.IGNORECASE)
_REGISTRAR_TITLE = re.compile(
    r"^(sponsoring )?registrar( name| of record)?$|^maintained by$|^source$"
    r"|^registration service provided by$",
    re.IGNORECASE,
)
_STATUS = re.compile(r"status", re.IGNORECASE)


@dataclass
class ParsedRecord:
    """Structured output of parsing one thick WHOIS record."""

    domain: str | None = None
    registrar: str | None = None
    created: date | None = None
    updated: date | None = None
    expires: date | None = None
    statuses: list[str] = field(default_factory=list)
    name_servers: list[str] = field(default_factory=list)
    registrant: dict[str, str] = field(default_factory=dict)
    #: every line grouped by its first-level block label
    blocks: dict[str, list[str]] = field(default_factory=dict)
    #: generic sub-field extraction for non-WHOIS domains (a syslog
    #: record's time/host/src/...); WHOIS assembly leaves it empty
    fields: dict[str, str] = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        """A JSON-serializable view (dates as ISO strings).

        The one wire shape shared by ``repro parse`` output and the
        serving tier's ``/parse`` endpoint.  ``fields`` only appears
        when a non-WHOIS assembler filled it, so the WHOIS wire shape
        is byte-identical to what it was before domains were pluggable.
        """
        payload = {
            "domain": self.domain,
            "registrar": self.registrar,
            "created": self.created.isoformat() if self.created else None,
            "updated": self.updated.isoformat() if self.updated else None,
            "expires": self.expires.isoformat() if self.expires else None,
            "statuses": self.statuses,
            "name_servers": self.name_servers,
            "registrant": self.registrant,
        }
        if self.fields:
            payload["fields"] = self.fields
        return payload

    @property
    def registrant_name(self) -> str | None:
        """Registrant person name, when extracted."""
        return self.registrant.get("name")

    @property
    def registrant_org(self) -> str | None:
        """Registrant organization, when extracted."""
        return self.registrant.get("org")

    @property
    def registrant_country(self) -> str | None:
        """Registrant country as printed, when extracted."""
        return self.registrant.get("country")


_BRACKET_TITLE = re.compile(r"^\s*\[([^\]]+)\]\s*(.*)$")


@lru_cache(maxsize=65536)
def value_of(line: str) -> str:
    """The value part of a line (text after the separator, or the line)."""
    split = split_title_value(line)
    if split is not None:
        text = split[1]
    else:
        bracket = _BRACKET_TITLE.match(line)  # "[Country]   Japan" style
        text = bracket.group(2) if bracket else line
    return text.strip().strip(".").strip()


@lru_cache(maxsize=65536)
def title_of(line: str) -> str:
    """The normalized lowercase field title of a line ("" if none)."""
    split = split_title_value(line)
    if split is None:
        bracket = _BRACKET_TITLE.match(line)
        if bracket:
            return " ".join(bracket.group(1).split()).strip().lower()
        return ""
    return " ".join(split[0].split()).strip().lower()


def assemble_record(
    lines: list[str],
    block_labels: list[str],
    registrant_subs: list[str] | None = None,
) -> ParsedRecord:
    """Build a :class:`ParsedRecord` from per-line labels.

    ``registrant_subs`` gives the second-level label for each line whose
    block label is ``registrant`` (in order); without it the registrant
    dict is left empty.
    """
    if len(lines) != len(block_labels):
        raise ValueError("lines and block_labels differ in length")
    record = ParsedRecord()
    sub_iter = iter(registrant_subs or [])
    for line, label in zip(lines, block_labels):
        record.blocks.setdefault(label, []).append(line)
        if label == "domain":
            _digest_domain_line(record, line)
        elif label == "date":
            _digest_date_line(record, line)
        elif label == "registrar":
            _digest_registrar_line(record, line)
        elif label == "registrant" and registrant_subs is not None:
            sub = next(sub_iter, "other")
            _digest_registrant_line(record, line, sub)
    if record.domain is None:
        _fallback_domain(record)
    return record


_NS_PREFIX = re.compile(r"^(ns|dns)\d+\.", re.IGNORECASE)


def _fallback_domain(record: ParsedRecord) -> None:
    """Free-form records may only mention the domain in prose or NS names."""
    for line in record.blocks.get("registrar", []):
        match = _DOMAIN_RE.search(line)
        if match:
            candidate = match.group(0).lower()
            if not candidate.startswith(("ns", "dns", "whois.", "www.")):
                record.domain = candidate
                return
    for server in record.name_servers:
        stripped = _NS_PREFIX.sub("", server)
        if stripped != server and "." in stripped:
            record.domain = stripped
            return


def _digest_domain_line(record: ParsedRecord, line: str) -> None:
    title = title_of(line)
    value = value_of(line)
    text = value or line.strip()
    # "Name:" identifies the domain here because the line already sits in a
    # domain-labeled block (banner-sectioned templates title it that way).
    if record.domain is None and ("domain" in title or title == "name"
                                  or not title):
        match = _DOMAIN_RE.search(text)
        if match and not _NS_TITLE.search(title):
            candidate = match.group(0).lower()
            if not candidate.startswith(("ns", "dns")):
                record.domain = candidate
    if _NS_TITLE.search(title) or (not title and _looks_like_ns(text)):
        for match in _DOMAIN_RE.finditer(text):
            record.name_servers.append(match.group(0).lower())
    elif _STATUS.search(title) and value:
        record.statuses.append(value)


def _looks_like_ns(text: str) -> bool:
    token = text.strip().lower()
    return bool(_DOMAIN_RE.fullmatch(token)) and token.startswith(
        ("ns", "dns", "a.", "b.")
    )


def _digest_date_line(record: ParsedRecord, line: str) -> None:
    parsed = parse_whois_date(line)
    if parsed is None:
        return
    title = title_of(line) or line.lower()
    if _EXPIRES.search(title):
        record.expires = record.expires or parsed
    elif _UPDATED.search(title):
        record.updated = record.updated or parsed
    elif _CREATED.search(title):
        record.created = record.created or parsed


_REGISTERED_VIA = re.compile(
    r"registered (?:through|by|with)\s+(?P<v>.+?)\s*$", re.IGNORECASE
)


def _digest_registrar_line(record: ParsedRecord, line: str) -> None:
    if record.registrar is not None:
        return
    title = title_of(line)
    value = value_of(line)
    # "Name:" is registrar-identifying here because the line already sits
    # inside a registrar-labeled block (e.g. a SPONSORING REGISTRAR banner).
    if (_REGISTRAR_TITLE.match(title) or title == "name") and value:
        record.registrar = value
        return
    if not title:
        match = _REGISTERED_VIA.search(line)
        if match:
            record.registrar = match.group("v").rstrip(".")


def _digest_registrant_line(record: ParsedRecord, line: str, sub: str) -> None:
    if sub == "other":
        return
    value = value_of(line)
    if not value:
        return
    if sub in record.registrant:
        if sub == "street":  # multi-line addresses concatenate
            record.registrant[sub] += ", " + value
        return
    record.registrant[sub] = value
