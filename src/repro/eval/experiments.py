"""Drivers for every table and figure in the paper's evaluation.

Each function regenerates one experiment at a configurable (scaled-down)
corpus size; the ``benchmarks/`` directory wraps these in pytest-benchmark
targets that print the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.datagen import CorpusGenerator
from repro.datagen.corpus import CorpusConfig
from repro.datagen.tlds import EXAMPLE_DOMAINS, NEW_TLDS
from repro.eval.crossval import LearningCurvePoint, learning_curve
from repro.eval.metrics import count_line_errors, evaluate_parser
from repro.netsim.crawler import CrawlStats, WhoisCrawler
from repro.netsim.internet import build_com_internet
from repro.parser import (
    RuleBasedParser,
    SimpleRegexParser,
    TemplateParser,
    WhoisParser,
)
from repro.survey.database import SurveyDatabase
from repro.whois.features import FeaturizerConfig
from repro.whois.labels import BLOCK_LABELS
from repro.whois.records import LabeledRecord

#: L2 strength used throughout the evaluation (tuned once, Section 3.4)
DEFAULT_L2 = 0.1


def make_parser(train: Sequence[LabeledRecord], **kwargs) -> WhoisParser:
    """The evaluation's statistical parser with standard settings."""
    kwargs.setdefault("l2", DEFAULT_L2)
    return WhoisParser(**kwargs).fit(train)


# ----------------------------------------------------------------------
# Table 1 / Figure 1: model introspection
# ----------------------------------------------------------------------


def table1_top_features(
    parser: WhoisParser, *, k: int = 8
) -> dict[str, list[tuple[str, float]]]:
    """Heavily weighted observation features per first-level label."""
    return {
        label: parser.top_block_features(label, k=k) for label in BLOCK_LABELS
    }


def figure1_transition_graph(parser: WhoisParser, *, k: int = 18) -> nx.DiGraph:
    """Graph of top transition-detecting features between blocks.

    Nodes are the six block labels; each edge carries the attributes most
    predictive of that transition, with their weights.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(BLOCK_LABELS)
    for attr, prev_label, label, weight in parser.top_transition_features(k=k):
        if graph.has_edge(prev_label, label):
            graph[prev_label][label]["features"].append((attr, weight))
        else:
            graph.add_edge(prev_label, label, features=[(attr, weight)])
    return graph


# ----------------------------------------------------------------------
# Figures 2 and 3: learning curves
# ----------------------------------------------------------------------


def figures2_3_learning_curves(
    *,
    n_records: int = 1500,
    train_sizes: Sequence[int] = (20, 100, 300),
    n_folds: int = 5,
    seed: int = 0,
) -> list[LearningCurvePoint]:
    """The Section 5.1 cross-validated comparison (scaled down)."""
    corpus = CorpusGenerator(CorpusConfig(seed=seed)).labeled_corpus(n_records)
    factories = {
        "rule-based": lambda train: RuleBasedParser().fit(train),
        "statistical": lambda train: make_parser(train, second_level=False),
    }
    return learning_curve(
        corpus, factories, train_sizes=train_sizes, n_folds=n_folds, seed=seed
    )


# ----------------------------------------------------------------------
# Table 2 / Section 5.3: new TLDs and maintainability
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NewTldResult:
    """One Table 2 row: per-TLD mislabeled lines, rules vs CRF."""

    tld: str
    example_domain: str
    total_lines: int
    rule_errors: int
    statistical_errors: int


def table2_new_tlds(
    *, train_size: int = 400, seed: int = 0
) -> list[NewTldResult]:
    """Per-TLD mislabeled lines for parsers trained only on com."""
    generator = CorpusGenerator(CorpusConfig(seed=seed))
    corpus = generator.labeled_corpus(train_size)
    statistical = make_parser(corpus, second_level=False)
    rules = RuleBasedParser().fit(corpus)
    results = []
    for tld, record in generator.new_tld_records().items():
        gold = record.block_labels
        results.append(
            NewTldResult(
                tld=tld,
                example_domain=EXAMPLE_DOMAINS[tld],
                total_lines=len(gold),
                rule_errors=count_line_errors(
                    rules.predict_blocks(record), gold
                ),
                statistical_errors=count_line_errors(
                    statistical.predict_blocks(record), gold
                ),
            )
        )
    return results


@dataclass(frozen=True)
class MaintainabilityResult:
    """Section 5.3 outcome: error counts before/after one-example fixes."""

    rule_tlds_with_errors: int
    statistical_tlds_with_errors: int
    examples_added: int
    statistical_errors_after: int
    rule_tlds_with_errors_after_exposure: int


def sec53_maintainability(
    *, train_size: int = 400, seed: int = 0
) -> MaintainabilityResult:
    """Section 5.3: fixing new-TLD errors with a handful of examples.

    The statistical parser is retrained with one labeled record per failing
    TLD (plus replay) and must reach zero errors on fresh records from those
    TLDs; the rule-based parser, even granted exposure to the same examples
    (the best case for rule maintenance, which in reality needs hand-edited
    rules), is re-measured for comparison.
    """
    generator = CorpusGenerator(CorpusConfig(seed=seed))
    corpus = generator.labeled_corpus(train_size)
    statistical = make_parser(corpus, second_level=False)
    rules = RuleBasedParser().fit(corpus)

    first_samples = generator.new_tld_records()
    failing: dict[str, LabeledRecord] = {}
    rule_failures = 0
    for tld, record in first_samples.items():
        gold = record.block_labels
        if count_line_errors(statistical.predict_blocks(record), gold) > 0:
            failing[tld] = record
        rule_failures += (
            count_line_errors(rules.predict_blocks(record), gold) > 0
        )

    statistical.partial_fit(list(failing.values()), replay=corpus[:100])
    rules.add_records(list(failing.values()))

    # Fresh records from the same TLDs (formats are per-TLD consistent).
    fresh_generator = CorpusGenerator(CorpusConfig(seed=seed + 1))
    fresh = fresh_generator.new_tld_records()
    statistical_errors_after = 0
    rule_failures_after = 0
    for tld, record in fresh.items():
        gold = record.block_labels
        if tld in failing:
            statistical_errors_after += count_line_errors(
                statistical.predict_blocks(record), gold
            )
        rule_failures_after += (
            count_line_errors(rules.predict_blocks(record), gold) > 0
        )
    return MaintainabilityResult(
        rule_tlds_with_errors=rule_failures,
        statistical_tlds_with_errors=len(failing),
        examples_added=len(failing),
        statistical_errors_after=statistical_errors_after,
        rule_tlds_with_errors_after_exposure=rule_failures_after,
    )


# ----------------------------------------------------------------------
# Section 2.3: baseline parser weaknesses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineResult:
    """Section 2.3 baseline weaknesses: template coverage and drift decay."""

    template_coverage: float
    template_ok_rate_static: float
    template_ok_rate_drifted: float
    regex_registrant_accuracy: float
    statistical_registrant_accuracy: float


def sec23_baselines(
    *,
    n_train: int = 400,
    n_test: int = 400,
    drift_probability: float = 0.8,
    seed: int = 0,
) -> BaselineResult:
    """Template coverage/fragility and generic-regex registrant accuracy."""
    generator = CorpusGenerator(CorpusConfig(seed=seed))
    train = generator.labeled_corpus(n_train)
    test = generator.labeled_corpus(n_test)
    drift_generator = CorpusGenerator(
        CorpusConfig(seed=seed + 1, drift_probability=drift_probability)
    )
    drifted = drift_generator.labeled_corpus(n_test)

    templates = TemplateParser().fit(train)
    coverage = templates.coverage(test)
    ok_static = templates.outcome_counts(test)["ok"] / n_test
    ok_drifted = templates.outcome_counts(drifted)["ok"] / n_test

    regex_accuracy = SimpleRegexParser().registrant_accuracy(test)

    statistical = make_parser(train)
    hits = checked = 0
    for record in test:
        gold = next(
            (l.text for l in record.lines
             if l.block == "registrant" and l.sub == "name"),
            None,
        )
        if gold is None:
            continue
        checked += 1
        parsed = statistical.parse(record.to_record())
        name = parsed.registrant_name
        if name and name.lower().strip() in gold.lower():
            hits += 1
    return BaselineResult(
        template_coverage=coverage,
        template_ok_rate_static=ok_static,
        template_ok_rate_drifted=ok_drifted,
        regex_registrant_accuracy=regex_accuracy,
        statistical_registrant_accuracy=hits / checked if checked else 0.0,
    )


# ----------------------------------------------------------------------
# Section 4.1 + Section 6: crawl and survey
# ----------------------------------------------------------------------


def crawl_and_survey(
    *,
    n_domains: int = 4000,
    n_train: int = 300,
    n_dbl: int = 800,
    seed: int = 0,
    jobs: int = 1,
    fault_profile=None,
    fault_seed: int = 0,
    retry_policy=None,
    breaker=None,
    gate=None,
    store=None,
    shards: int = 1,
) -> tuple[CrawlStats, SurveyDatabase, WhoisParser]:
    """End-to-end pipeline: crawl the zone, parse, build the database.

    Parsing runs on the bulk path (:meth:`WhoisParser.parse_many`), with
    ``jobs`` worker processes when requested -- same rows as the
    per-record loop, at survey throughput.  DBL-listed registrations are
    appended to the survey database directly (the blacklist join of
    Section 6.4).

    ``store`` selects the survey backend (any
    :class:`~repro.survey.store.SurveyStore`; in-memory by default) and
    ``shards`` > 1 routes ingest through
    :func:`~repro.survey.ingest.sharded_ingest`, fanning the admit ->
    parse -> normalize -> write pipeline across worker processes while
    keeping rows identical to the single-process path.

    Resilience knobs: ``fault_profile`` (a name from
    :data:`repro.netsim.faults.PROFILES`, a JSON path, or a
    ``FaultProfile``) injects a hostile internet; ``retry_policy`` and
    ``breaker`` tune the crawler's recovery; ``gate`` (a
    :class:`~repro.resilience.RecordGate`, created by default whenever
    faults are on) quarantines thick records the parser rejects instead
    of counting them as ok.
    """
    from repro.resilience.quarantine import RecordGate
    from repro.survey.ingest import jobs_from_results, sharded_ingest

    generator = CorpusGenerator(CorpusConfig(seed=seed))
    train = generator.labeled_corpus(n_train)
    parser = make_parser(train)

    zone, registrations = generator.zone(n_domains)
    internet, _clock, _truth = build_com_internet(
        generator, zone, registrations,
        faults=fault_profile, fault_seed=fault_seed,
    )
    crawler = WhoisCrawler(
        internet, retry_policy=retry_policy, breaker=breaker
    )
    results = crawler.crawl(zone)

    if gate is None and fault_profile is not None:
        gate = RecordGate()
    if store is not None or shards > 1:
        db = sharded_ingest(
            jobs_from_results(results), parser,
            store=store, shards=shards, gate=gate, stats=crawler.stats,
        )
    else:
        parsed_crawl = WhoisCrawler.parse_results(
            results, parser, jobs=jobs, gate=gate, stats=crawler.stats
        )
        db = SurveyDatabase.from_parsed_crawl(parsed_crawl)
    dbl_records = [
        generator.render(registration)
        for registration in generator.dbl_registrations(n_dbl)
    ]
    parsed_dbl = parser.parse_many(
        [record.text for record in dbl_records], jobs=jobs
    )
    for record, parsed in zip(dbl_records, parsed_dbl):
        db.add_parsed(record.domain, parsed, blacklisted=True)
    db.flush()
    return crawler.stats, db, parser


# ----------------------------------------------------------------------
# Ablation: two-level hierarchy vs one flat CRF
# ----------------------------------------------------------------------

_FLAT_LABELS = tuple(
    label for label in BLOCK_LABELS if label != "registrant"
) + tuple(f"registrant+{sub}" for sub in (
    "name", "id", "org", "street", "city", "state", "postcode", "country",
    "phone", "fax", "email", "other",
))


def _flatten_labels(record: LabeledRecord) -> list[str]:
    return [
        line.block if line.block != "registrant"
        else f"registrant+{line.sub or 'other'}"
        for line in record.lines
    ]


@dataclass(frozen=True)
class FlatVsTwoLevelResult:
    """Flat single-CRF vs the paper's two-level strategy, same data."""

    flat_block_error: float
    two_level_block_error: float
    flat_sub_error: float
    two_level_sub_error: float
    flat_states: int
    two_level_states: tuple[int, int]


def two_level_vs_flat(
    *, n_train: int = 120, n_test: int = 300, seed: int = 0
) -> FlatVsTwoLevelResult:
    """The paper's hierarchy (6-state CRF + 12-state registrant CRF) vs a
    single flat CRF over the 17 joint labels."""
    from repro.crf.model import ChainCRF
    from repro.whois.features import WhoisFeaturizer

    generator = CorpusGenerator(CorpusConfig(seed=seed))
    train = generator.labeled_corpus(n_train)
    test = generator.labeled_corpus(n_test)

    two_level = make_parser(train)
    featurizer = WhoisFeaturizer()
    flat = ChainCRF(_FLAT_LABELS, l2=DEFAULT_L2, max_iterations=120)
    flat.fit(
        [featurizer.featurize_lines(r.raw_lines) for r in train],
        [_flatten_labels(r) for r in train],
    )

    flat_block = flat_sub = two_block = two_sub = 0
    n_lines = n_reg_lines = 0
    for record in test:
        gold_joint = _flatten_labels(record)
        pred_flat = flat.predict(featurizer.featurize_lines(record.raw_lines))
        pred_two = two_level.label_lines(record)
        for gold, p_flat, (_, p_block, p_sub) in zip(
            gold_joint, pred_flat, pred_two
        ):
            n_lines += 1
            gold_block = gold.split("+")[0]
            flat_block += p_flat.split("+")[0] != gold_block
            two_block += p_block != gold_block
            if gold_block == "registrant":
                n_reg_lines += 1
                gold_sub = gold.split("+")[1]
                flat_sub += p_flat != gold
                two_sub += (p_block != "registrant"
                            or (p_sub or "other") != gold_sub)
    return FlatVsTwoLevelResult(
        flat_block_error=flat_block / n_lines,
        two_level_block_error=two_block / n_lines,
        flat_sub_error=flat_sub / n_reg_lines,
        two_level_sub_error=two_sub / n_reg_lines,
        flat_states=len(_FLAT_LABELS),
        two_level_states=(len(BLOCK_LABELS), 12),
    )


# ----------------------------------------------------------------------
# Extension: second-level (registrant sub-field) extraction quality
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldMetrics:
    """Per-field extraction counts with precision/recall/F1 views."""

    field: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when the field was never predicted."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when the field never occurs in gold."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0.0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def registrant_field_metrics(
    parser: WhoisParser, records: Sequence[LabeledRecord]
) -> dict[str, FieldMetrics]:
    """Per-subfield precision/recall of the second-level CRF.

    The paper evaluates the first level (Figures 2-3); this extension
    quantifies the registrant extraction the survey relies on.
    """
    counts: dict[str, list[int]] = {}
    for record in records:
        segments: list[list] = []
        current: list = []
        for line in record.lines:
            if line.block == "registrant":
                current.append(line)
            elif current:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        for segment in segments:
            predicted = parser.predict_registrant_fields(
                [line.text for line in segment]
            )
            for line, pred in zip(segment, predicted):
                gold = line.sub or "other"
                for field in (gold, pred):
                    counts.setdefault(field, [0, 0, 0])
                if pred == gold:
                    counts[gold][0] += 1
                else:
                    counts[pred][1] += 1
                    counts[gold][2] += 1
    return {
        field: FieldMetrics(field, tp, fp, fn)
        for field, (tp, fp, fn) in sorted(counts.items())
    }


# ----------------------------------------------------------------------
# Ablations (DESIGN.md's design-choice studies)
# ----------------------------------------------------------------------

ABLATION_CONFIGS: dict[str, FeaturizerConfig] = {
    "full": FeaturizerConfig(),
    "no-tv-tagging": FeaturizerConfig(tv_tagging=False),
    "no-markers": FeaturizerConfig(markers=False),
    "no-classes": FeaturizerConfig(classes=False),
    "no-edge-features": FeaturizerConfig(edge_words=False, edge_markers=False),
    "no-header-context": FeaturizerConfig(header_context=False),
    "no-plain-words": FeaturizerConfig(plain_words=False),
    "no-prefixes": FeaturizerConfig(prefixes=False),
}


def ablation_study(
    *,
    n_train: int = 60,
    n_test: int = 300,
    seed: int = 0,
    configs: dict[str, FeaturizerConfig] | None = None,
) -> dict[str, float]:
    """Line error rate per featurizer configuration, small-training regime
    (where feature design matters most)."""
    generator = CorpusGenerator(CorpusConfig(seed=seed))
    train = generator.labeled_corpus(n_train)
    test = generator.labeled_corpus(n_test)
    results = {}
    for name, config in (configs or ABLATION_CONFIGS).items():
        parser = make_parser(
            train, featurizer_config=config, second_level=False
        )
        results[name] = evaluate_parser(parser, test).line_error_rate
    return results
