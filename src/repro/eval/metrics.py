"""Error metrics for WHOIS parsers (Section 5.1).

The paper measures two test-set error rates: the *line error rate* (the
fraction of lines across all records that are mislabeled) and the
*document error rate* (the fraction of records with at least one
mislabeled line).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.whois.records import LabeledRecord


class BlockLabeler(Protocol):
    """Anything that can assign block labels to a record's lines."""

    def predict_blocks(self, record: LabeledRecord) -> list[str]:
        """First-level label per labelable line of ``record``."""
        ...


@dataclass(frozen=True)
class ParserEvaluation:
    """Aggregate evaluation of one parser over one test set."""

    n_records: int
    n_lines: int
    line_errors: int
    document_errors: int
    confusion: dict[tuple[str, str], int]  # (gold, predicted) -> count

    @property
    def line_error_rate(self) -> float:
        """Mislabeled lines over all lines (the paper's headline metric)."""
        return self.line_errors / self.n_lines if self.n_lines else 0.0

    @property
    def document_error_rate(self) -> float:
        """Fraction of records with at least one mislabeled line."""
        return self.document_errors / self.n_records if self.n_records else 0.0


def count_line_errors(
    predicted: Sequence[str], gold: Sequence[str]
) -> int:
    """Number of positions where ``predicted`` disagrees with ``gold``."""
    if len(predicted) != len(gold):
        raise ValueError(
            f"predicted {len(predicted)} labels for {len(gold)} lines"
        )
    return sum(p != g for p, g in zip(predicted, gold))


def evaluate_parser(
    parser: BlockLabeler, records: Iterable[LabeledRecord]
) -> ParserEvaluation:
    """Evaluate block labeling over a labeled test set."""
    n_records = n_lines = line_errors = document_errors = 0
    confusion: Counter = Counter()
    for record in records:
        predicted = parser.predict_blocks(record)
        gold = record.block_labels
        errors = count_line_errors(predicted, gold)
        for p, g in zip(predicted, gold):
            if p != g:
                confusion[(g, p)] += 1
        n_records += 1
        n_lines += len(gold)
        line_errors += errors
        document_errors += errors > 0
    return ParserEvaluation(
        n_records=n_records,
        n_lines=n_lines,
        line_errors=line_errors,
        document_errors=document_errors,
        confusion=dict(confusion),
    )


def line_error_rate(
    parser: BlockLabeler, records: Iterable[LabeledRecord]
) -> float:
    """Convenience wrapper: just the line error rate over ``records``."""
    return evaluate_parser(parser, records).line_error_rate


def document_error_rate(
    parser: BlockLabeler, records: Iterable[LabeledRecord]
) -> float:
    """Convenience wrapper: just the document error rate over ``records``."""
    return evaluate_parser(parser, records).document_error_rate


def confusion_matrix(
    parser: BlockLabeler, records: Iterable[LabeledRecord]
) -> dict[tuple[str, str], int]:
    """``(gold, predicted) -> count`` over every mislabeled line."""
    return evaluate_parser(parser, records).confusion
