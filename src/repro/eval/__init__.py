"""Evaluation harness: metrics, cross-validation, experiment drivers."""

from repro.eval.metrics import (
    confusion_matrix,
    document_error_rate,
    evaluate_parser,
    line_error_rate,
)
from repro.eval.crossval import LearningCurvePoint, kfold, learning_curve

__all__ = [
    "LearningCurvePoint",
    "confusion_matrix",
    "document_error_rate",
    "evaluate_parser",
    "kfold",
    "learning_curve",
    "line_error_rate",
]
