"""Five-fold cross-validation with nested training-size subsampling.

Section 5.1: the 86K labeled records are split into five folds; within
each fold, smaller training sets of 20/100/1000/10000 records are
subsampled; parsers built on each training set are evaluated on the other
folds, giving five estimates (mean and standard deviation) per size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.eval.metrics import BlockLabeler, evaluate_parser
from repro.whois.records import LabeledRecord

ParserFactory = Callable[[Sequence[LabeledRecord]], BlockLabeler]


def kfold(
    records: Sequence[LabeledRecord], k: int, *, seed: int = 0
) -> list[list[LabeledRecord]]:
    """Shuffle and split records into ``k`` roughly equal folds."""
    if k < 2:
        raise ValueError("need at least 2 folds")
    if len(records) < k:
        raise ValueError(f"cannot split {len(records)} records into {k} folds")
    shuffled = list(records)
    random.Random(seed).shuffle(shuffled)
    folds: list[list[LabeledRecord]] = [[] for _ in range(k)]
    for i, record in enumerate(shuffled):
        folds[i % k].append(record)
    return folds


@dataclass(frozen=True)
class LearningCurvePoint:
    """One point of the Figure 2/3 curves: a parser at one training size."""

    parser_name: str
    train_size: int
    line_error_mean: float
    line_error_std: float
    document_error_mean: float
    document_error_std: float
    n_folds: int


def _mean_std(values: list[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


def learning_curve(
    records: Sequence[LabeledRecord],
    factories: dict[str, ParserFactory],
    *,
    train_sizes: Sequence[int],
    n_folds: int = 5,
    seed: int = 0,
) -> list[LearningCurvePoint]:
    """Run the Section 5.1 protocol for each parser factory.

    For each fold, training subsets of each size are drawn from the fold
    and the parser is evaluated on the union of the other folds.
    """
    folds = kfold(records, n_folds, seed=seed)
    points: list[LearningCurvePoint] = []
    for size in train_sizes:
        per_parser: dict[str, tuple[list[float], list[float]]] = {
            name: ([], []) for name in factories
        }
        for i, fold in enumerate(folds):
            if size > len(fold):
                raise ValueError(
                    f"train size {size} exceeds fold size {len(fold)}"
                )
            train = fold[:size]
            test = [r for j, f in enumerate(folds) if j != i for r in f]
            for name, factory in factories.items():
                parser = factory(train)
                evaluation = evaluate_parser(parser, test)
                per_parser[name][0].append(evaluation.line_error_rate)
                per_parser[name][1].append(evaluation.document_error_rate)
        for name, (line_errors, doc_errors) in per_parser.items():
            line_mean, line_std = _mean_std(line_errors)
            doc_mean, doc_std = _mean_std(doc_errors)
            points.append(
                LearningCurvePoint(
                    parser_name=name,
                    train_size=size,
                    line_error_mean=line_mean,
                    line_error_std=line_std,
                    document_error_mean=doc_mean,
                    document_error_std=doc_std,
                    n_folds=n_folds,
                )
            )
    return points
