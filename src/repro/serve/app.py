"""The serving application: batchers + admission + models, two fronts.

:class:`ServeApp` is the one process the ROADMAP's production story
runs: it holds the :class:`~repro.serve.models.ModelRegistry`, a
micro-batcher per workload (``parse`` requests ride
``WhoisParser.parse_many``, RDAP lookups ride
``RdapGateway.try_lookup_many``), and the admission controller every
request passes first.  Front-ends are thin adapters over the async
``parse_text`` / ``rdap_domain`` / ``whois_lookup`` entry points:

- a **port-43 listener** speaking RFC 3912 framing (the
  :mod:`repro.netsim.protocol` helpers the simulator and the asyncio
  transport already share): one domain in, the *parsed* legacy record
  out -- WHOIS text normalized through the model, the "legacy" face of
  the service;
- an **HTTP front-end** (:mod:`repro.serve.http`) serving ``/parse``,
  ``/rdap/domain/<name>``, ``/healthz``, ``/readyz`` and ``/metrics``
  -- the RDAP/structured face.

Graceful shutdown (:meth:`stop`): admission closes (new requests get
typed :class:`~repro.errors.Unavailable`), both listeners stop
accepting, in-flight batches drain and deliver results, queued requests
are rejected, and only then do the sockets close.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable

from repro import errors, obs
from repro.netsim.protocol import ProtocolError, frame_response, parse_query
from repro.parser.api import ParserBase
from repro.parser.fields import ParsedRecord
from repro.rdap.server import RdapGateway
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.models import ModelRegistry

__all__ = ["ServeApp", "ServeConfig", "render_parsed_whois"]

FetchFn = Callable[[str], "str | None"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs, mirroring the ``repro serve`` CLI flags."""

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    rate_limit: "int | None" = None
    rate_window: float = 1.0
    rate_penalty: float = 1.0
    rdap_cache_size: int = 1024


class _RegistryParser(ParserBase):
    """Parser-protocol adapter over the registry's *current* model.

    The RDAP gateway holds one parser for its lifetime; routing its
    calls through this proxy means a hot-swap reaches the gateway too,
    resolved per call rather than per process.
    """

    def __init__(self, models: ModelRegistry) -> None:
        self._models = models

    def parse(self, record) -> ParsedRecord:
        return self._models.current_parser.parse(record)

    def parse_many(self, records, *, jobs: int = 1) -> list[ParsedRecord]:
        return self._models.current_parser.parse_many(records, jobs=jobs)


def render_parsed_whois(parsed: ParsedRecord) -> str:
    """A parsed record as normalized legacy WHOIS text.

    This is what the port-43 front-end returns: the free-form record
    re-rendered from the model's structured fields, one stable
    ``Title: value`` schema regardless of which registrar produced the
    original -- parsed WHOIS wearing the legacy wire format.
    """
    lines = []
    if parsed.domain:
        lines.append(f"Domain Name: {parsed.domain}")
    if parsed.registrar:
        lines.append(f"Registrar: {parsed.registrar}")
    if parsed.created:
        lines.append(f"Creation Date: {parsed.created.isoformat()}")
    if parsed.updated:
        lines.append(f"Updated Date: {parsed.updated.isoformat()}")
    if parsed.expires:
        lines.append(f"Registry Expiry Date: {parsed.expires.isoformat()}")
    for status in parsed.statuses:
        lines.append(f"Domain Status: {status}")
    for server in parsed.name_servers:
        lines.append(f"Name Server: {server}")
    for key, value in sorted(parsed.registrant.items()):
        lines.append(f"Registrant {key.replace('_', ' ').title()}: {value}")
    return "\n".join(lines)


class ServeApp:
    """One process serving the parser and the RDAP gateway online."""

    def __init__(
        self,
        models: ModelRegistry,
        fetch_whois: "FetchFn | None" = None,
        *,
        config: "ServeConfig | None" = None,
        metrics: "obs.MetricsRegistry | None" = None,
    ) -> None:
        """Wire the registry, gateway, admission, and batcher together.

        ``fetch_whois`` backs RDAP lookups with raw record text (e.g. a
        crawl JSONL lookup); omitted, lookups answer from parses only.
        """
        self.models = models
        self.config = config or ServeConfig()
        #: installed for the app's lifetime so every layer underneath
        #: (parse_many cache stats, rdap.* counters, serve.* series)
        #: reports into one scrapeable registry.
        self.metrics = metrics or obs.MetricsRegistry()
        self._fetch = fetch_whois or (lambda _domain: None)
        self.gateway = RdapGateway(
            _RegistryParser(models),
            self._fetch,
            cache_size=self.config.rdap_cache_size,
        )
        self.admission = AdmissionController(
            queue_depth=self.config.queue_depth,
            rate_limit=self.config.rate_limit,
            rate_window=self.config.rate_window,
            rate_penalty=self.config.rate_penalty,
        )
        self.parse_batcher = MicroBatcher(
            self._parse_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            name="parse",
        )
        self.rdap_batcher = MicroBatcher(
            self._rdap_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            name="rdap",
        )
        self._servers: list[asyncio.AbstractServer] = []
        self._previous_registry: "obs.MetricsRegistry | None" = None
        #: per-parser encoder-cache totals already folded into the
        #: serve.encoder_cache_* counters (see ``sync_encoder_metrics``)
        self._encoder_seen: dict[int, tuple[int, int]] = {}
        self.ready = False
        self.http_port: "int | None" = None
        self.whois_port: "int | None" = None

    # ------------------------------------------------------------------
    # Batch functions (run in the executor, model resolved per batch)
    # ------------------------------------------------------------------

    def _parse_batch(self, texts: list[str]) -> list:
        return self.models.current_parser.parse_many(texts)

    def _rdap_batch(self, domains: list[str]) -> list:
        return self.gateway.try_lookup_many(domains)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self,
        *,
        host: str = "127.0.0.1",
        http_port: "int | None" = None,
        whois_port: "int | None" = None,
    ) -> "ServeApp":
        """Start batchers and any requested listeners (port 0 = ephemeral)."""
        self._previous_registry = obs.active()
        obs.install(self.metrics)
        self.parse_batcher.start()
        self.rdap_batcher.start()
        if whois_port is not None:
            server = await asyncio.start_server(
                self._handle_whois, host, whois_port
            )
            self.whois_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if http_port is not None:
            from repro.serve.http import HttpFrontend

            self._http = HttpFrontend(self)
            server = await asyncio.start_server(
                self._http.handle, host, http_port
            )
            self.http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        self.ready = True
        return self

    async def stop(self) -> None:
        """Graceful shutdown; see the module docstring for the contract."""
        self.ready = False
        self.admission.close()
        for server in self._servers:
            server.close()
        await self.parse_batcher.stop()
        await self.rdap_batcher.stop()
        # Persist the warm line-encoder caches so the next start of this
        # registry (same vocabularies) hits on its very first batch.
        try:
            self.models.persist_encoder_cache()
        except OSError:
            pass  # read-only registry root; cold restart is still correct
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        self.http_port = None
        self.whois_port = None
        if obs.active() is self.metrics:
            obs.uninstall()
            if self._previous_registry is not None:
                obs.install(self._previous_registry)

    async def __aenter__(self) -> "ServeApp":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Request entry points (shared by every front-end)
    # ------------------------------------------------------------------

    async def parse_text(
        self, text: str, *, client: str = "local"
    ) -> ParsedRecord:
        """Parse one raw WHOIS record through admission + the batcher."""
        self.admission.admit(client)
        try:
            with obs.trace("serve.request_seconds", endpoint="parse"):
                return await self.parse_batcher.submit(text)
        finally:
            self.admission.release()

    async def rdap_domain(
        self, domain: str, *, client: str = "local"
    ) -> dict:
        """Validated RDAP JSON for ``domain``; raises typed errors."""
        self.admission.admit(client)
        try:
            with obs.trace("serve.request_seconds", endpoint="rdap"):
                result = await self.rdap_batcher.submit(domain)
        finally:
            self.admission.release()
        if isinstance(result, BaseException):
            raise result
        return result

    async def whois_lookup(
        self, domain: str, *, client: str = "local"
    ) -> "str | None":
        """Port-43 semantics: normalized parsed record text, or None."""
        text = self._fetch(domain.lower())
        if text is None:
            return None
        parsed = await self.parse_text(text, client=client)
        if not parsed.domain:
            parsed.domain = domain
        return render_parsed_whois(parsed)

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------

    def swap_model(self, parser, *, activate: bool = True) -> str:
        """Publish (and by default activate) a new parser version.

        In-flight batches keep the model they started with; the next
        batch resolves the new one.  The RDAP response cache is dropped
        because its payloads were rendered by the outgoing model.
        """
        version = self.models.publish(parser, activate=activate)
        if activate:
            self.gateway.clear_cache()
        return version

    def rollback_model(self) -> str:
        """Re-activate the previously active version; clears caches."""
        version = self.models.rollback()
        self.gateway.clear_cache()
        return version

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def sync_encoder_metrics(self) -> None:
        """Fold LineEncoder cache totals into ``serve.encoder_cache_*``.

        The bulk path's per-batch drain (``drain_cache_stats``) feeds
        the offline ``parse.line_cache.*`` series; online we want the
        same efficacy signal as stable counters on ``/metrics``.  Totals
        are tracked per parser instance so a hot-swap (fresh encoders,
        counts restarting at zero) never moves a counter backwards.
        """
        if not self.models.has_active:
            return
        parser = self.models.current_parser
        totals = getattr(parser, "encoder_cache_totals", None)
        if totals is None:
            return
        hits, misses = totals()
        seen_hits, seen_misses = self._encoder_seen.get(id(parser), (0, 0))
        if hits > seen_hits:
            obs.inc("serve.encoder_cache_hits", hits - seen_hits)
        if misses > seen_misses:
            obs.inc("serve.encoder_cache_misses", misses - seen_misses)
        self._encoder_seen[id(parser)] = (hits, misses)

    def metrics_text(self) -> str:
        """The Prometheus exposition the ``/metrics`` endpoint serves."""
        from repro.obs.export import to_prometheus

        self.sync_encoder_metrics()
        return to_prometheus(self.metrics)

    # ------------------------------------------------------------------
    # The port-43 front-end (RFC 3912 framing)
    # ------------------------------------------------------------------

    async def _handle_whois(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "unknown"
        try:
            try:
                raw = await asyncio.wait_for(reader.readline(), timeout=10.0)
                query = parse_query(raw)
            except (ProtocolError, asyncio.TimeoutError):
                writer.write(frame_response("% Malformed request"))
                return
            obs.inc("serve.requests", endpoint="whois")
            try:
                text = await self.whois_lookup(query, client=client)
            except errors.ReproError as exc:
                writer.write(frame_response(f"% Error: {exc.code}"))
                return
            if text is None:
                writer.write(frame_response("No match for domain."))
            else:
                writer.write(frame_response(text))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
