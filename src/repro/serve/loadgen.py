"""Closed-loop load generation and latency reporting for the serving tier.

The serving claims worth making are *distributional*: micro-batching is
sold on p95/p99 at concurrency, not on mean throughput, and a hot-swap
is only "zero-downtime" if no request in a sustained run fails.
:func:`run_load` drives an async submit function with ``concurrency``
closed-loop workers and returns a :class:`LatencyReport` with the
quantiles, error counts, and throughput; ``benchmarks/bench_serving.py``
builds its acceptance gates on top.

The submit function is whatever face of the server the experiment
targets: ``app.parse_text`` directly (measuring the batcher, not the
socket stack), an HTTP client coroutine, or a port-43 query -- the
harness only awaits it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro import errors

__all__ = ["LatencyReport", "report_header", "run_load"]


@dataclass
class LatencyReport:
    """Latencies (seconds) and failure accounting for one load run."""

    name: str
    elapsed_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    #: typed rejections (Overloaded/RateLimited/Unavailable) by code
    rejections: dict[str, int] = field(default_factory=dict)
    #: non-ReproError failures, which a healthy run has none of
    failures: int = 0

    @property
    def count(self) -> int:
        """Completed (non-rejected, non-failed) requests."""
        return len(self.latencies)

    @property
    def rejected(self) -> int:
        """Requests shed with a typed rejection, across all codes."""
        return sum(self.rejections.values())

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.count / self.elapsed_seconds

    @property
    def mean(self) -> float:
        """Mean latency in seconds over completed requests."""
        return sum(self.latencies) / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile of the completed-request latencies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    @property
    def p50(self) -> float:
        """Median latency in seconds."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile latency in seconds."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile latency in seconds."""
        return self.quantile(0.99)

    def row(self) -> str:
        """One aligned summary row (pairs with :func:`report_header`)."""
        return (
            f"{self.name:<26} {self.count:>6} {self.rejected:>7} "
            f"{self.failures:>6} {self.throughput:>9.0f} "
            f"{self.p50 * 1e3:>8.2f} {self.p95 * 1e3:>8.2f} "
            f"{self.p99 * 1e3:>8.2f}"
        )


def report_header() -> str:
    """Column header matching :meth:`LatencyReport.row`."""
    return (
        f"{'run':<26} {'ok':>6} {'shed':>7} {'fail':>6} {'req/s':>9} "
        f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8}"
    )


async def run_load(
    submit: Callable[[int], Awaitable],
    *,
    n_requests: int,
    concurrency: int,
    name: str = "load",
) -> LatencyReport:
    """Drive ``submit`` with a closed loop of ``concurrency`` workers.

    Each worker repeatedly takes the next request index, awaits
    ``submit(i)``, and records the request's wall latency.  Typed
    :class:`~repro.errors.ReproError` rejections are tallied by taxonomy
    code (they are the *expected* face of admission control under
    overload); any other exception counts as a failure.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    report = LatencyReport(name=name)
    loop = asyncio.get_running_loop()
    next_index = iter(range(n_requests))

    async def worker() -> None:
        for i in next_index:
            started = loop.time()
            try:
                await submit(i)
            except errors.ReproError as exc:
                report.rejections[exc.code] = (
                    report.rejections.get(exc.code, 0) + 1
                )
                continue
            except Exception:  # noqa: BLE001 -- tallied, run continues
                report.failures += 1
                continue
            report.latencies.append(loop.time() - started)

    started = loop.time()
    workers = max(1, min(concurrency, n_requests))
    await asyncio.gather(*(worker() for _ in range(workers)))
    report.elapsed_seconds = loop.time() - started
    return report
