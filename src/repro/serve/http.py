"""A minimal stdlib HTTP front-end over :class:`~repro.serve.app.ServeApp`.

Just enough HTTP/1.1 for the serving endpoints -- request line, headers,
``Content-Length`` body, one response, connection close.  No external
web framework (the repo's zero-dependency rule), no TLS, binds
localhost by default.  Routes:

- ``POST /parse``                 raw WHOIS text in, parsed-record JSON out
- ``GET  /rdap/domain/<name>``    validated RDAP JSON (RFC 7483 errors)
- ``GET  /healthz``               liveness: the loop is serving
- ``GET  /readyz``                readiness: a model version is active
- ``GET  /metrics``               Prometheus exposition of the app registry
                                  (``serve.*``, ``rdap.*``, ``parse.*``
                                  series, including the online
                                  ``serve.encoder_cache_{hits,misses}``)

Typed :mod:`repro.errors` rejections map to their ``http_status``
(429 rate-limited, 503 overloaded/unavailable), so clients see the
admission controller's decisions as standard HTTP backpressure.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING
from urllib.parse import unquote

from repro import errors, obs
from repro.errors import error_payload

if TYPE_CHECKING:
    from repro.serve.app import ServeApp

__all__ = ["HttpFrontend"]

#: request bodies larger than this are refused outright
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _response(
    status: int, body: str, content_type: str = "application/json"
) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


class HttpFrontend:
    """Route parsed HTTP requests into the app's async entry points."""

    def __init__(self, app: "ServeApp") -> None:
        self.app = app

    # ------------------------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP/1.1 connection (one request, then close)."""
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "unknown"
        try:
            response = await self._respond(reader, client)
            writer.write(response)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, bytes | None] | None":
        """``(method, path, body)`` or None on a malformed request.

        An oversized body is reported as ``body=None`` (the bytes are
        never read), which the router turns into a 413.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
        except asyncio.TimeoutError:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > MAX_BODY_BYTES:
            return (method, target, None)
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        return method, target, body

    async def _respond(
        self, reader: asyncio.StreamReader, client: str
    ) -> bytes:
        request = await self._read_request(reader)
        if request is None:
            return _response(
                400, json.dumps({"code": "bad_request",
                                 "detail": "malformed HTTP request"})
            )
        method, target, body = request
        path = unquote(target.split("?", 1)[0])
        obs.inc("serve.requests", endpoint=self._endpoint_label(path))
        try:
            return await self._route(method, path, body, client)
        except errors.ReproError as exc:
            return _response(exc.http_status, json.dumps(error_payload(exc)))
        except Exception as exc:  # noqa: BLE001 -- last-resort 500
            return _response(500, json.dumps(error_payload(exc)))

    @staticmethod
    def _endpoint_label(path: str) -> str:
        if path.startswith("/rdap/"):
            return "rdap"
        return path.strip("/").split("/", 1)[0] or "root"

    # ------------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: "bytes | None", client: str
    ) -> bytes:
        app = self.app
        if path == "/healthz":
            return _response(200, "ok\n", "text/plain")
        if path == "/readyz":
            if app.ready and app.models.has_active:
                return _response(200, "ready\n", "text/plain")
            return _response(503, "not ready\n", "text/plain")
        if path == "/metrics":
            return _response(200, app.metrics_text(), "text/plain")
        if path == "/parse":
            if method != "POST":
                return _response(
                    405, json.dumps({"code": "method_not_allowed",
                                     "detail": "POST raw WHOIS text"})
                )
            if body is None:
                return _response(
                    413, json.dumps({"code": "payload_too_large",
                                     "detail": "record exceeds 1 MiB"})
                )
            text = body.decode("utf-8", errors="replace")
            parsed = await app.parse_text(text, client=client)
            return _response(200, json.dumps(parsed.to_jsonable(), indent=2))
        if path.startswith("/rdap/domain/"):
            domain = path[len("/rdap/domain/"):].strip("/").lower()
            if not domain:
                return _response(
                    400, json.dumps({"code": "bad_request",
                                     "detail": "missing domain"})
                )
            try:
                payload = await app.rdap_domain(domain, client=client)
            except errors.DomainNotFound as exc:
                return _response(
                    404, app.gateway.error_json(domain, exc=exc),
                    "application/rdap+json",
                )
            return _response(
                200, json.dumps(payload, indent=2), "application/rdap+json"
            )
        return _response(
            404, json.dumps({"code": "not_found", "detail": path})
        )
