"""The micro-batching scheduler of the online serving tier.

PR 1 made the *offline* bulk path fast: ``WhoisParser.parse_many``
decodes a batch of records ~7x faster than a per-record loop, because
batched Viterbi amortizes the dense numpy recursions and the memoizing
:class:`~repro.parser.bulk.LineEncoder` collapses repeated lines.  An
online server receives *single* requests, so without coalescing every
request pays the per-record price.  :class:`MicroBatcher` converts the
offline win into an online tail-latency win: concurrent requests are
gathered into one ``parse_many``-shaped call and the results fanned back
out to the per-request futures.

Batching policy (the ``max_batch_size`` / ``max_wait_ms`` knobs):

- One consumer task owns one execution slot.  While a batch is decoding
  (in the default thread-pool executor, so the event loop keeps
  accepting connections), new arrivals accumulate in the queue; the next
  batch scoops them all.  Under sustained concurrency this *natural
  batching* fills batches without any added waiting.
- After taking the first item of a batch, the consumer drains every
  immediately-available item up to ``max_batch_size``.
- A timed top-up wait of at most ``max_wait_ms`` happens only when the
  batcher is *warm* -- the previous batch held more than one item, or
  submitted-but-unserved requests are known to exist.  A lone request on
  an idle server therefore executes immediately: enabling the batcher
  must not tax single-request latency (the CI tripwire in
  ``benchmarks/bench_serving.py`` holds it to <10%).

The batch function runs with whatever model is current *at execution
time*, which is what makes the model registry's hot-swap atomic: batches
in flight finish on the old model, the next batch picks up the new one,
and no request is ever dropped.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Sequence

from repro import errors, obs

__all__ = ["MicroBatcher"]

#: queue sentinel that tells the consumer task to exit
_STOP = object()


class MicroBatcher:
    """Coalesce awaited single items into batched calls.

    Parameters
    ----------
    batch_fn:
        ``list[item] -> list[result]``, called off the event loop in the
        default executor.  One result per item, in order; a result that
        is a ``BaseException`` instance is raised to that item's waiter
        (so one poisoned item cannot sink its batch-mates).
    max_batch_size:
        Hard cap on items per call.
    max_wait_ms:
        Upper bound on the warm-path top-up wait (see module docstring).
    name:
        Label for the ``serve.batch.*`` metrics this batcher emits.
    """

    def __init__(
        self,
        batch_fn: Callable[[list], Sequence],
        *,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        name: str = "parse",
    ) -> None:
        """See the class docstring for the parameter semantics."""
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.name = name
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._stopping = False
        self._pending = 0          # submitted and not yet resolved
        self._last_batch_size = 0  # warmth signal for the top-up wait
        self.batches = 0
        self.items = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MicroBatcher":
        """Spawn the consumer task on the running loop."""
        if self._task is None:
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"microbatcher-{self.name}"
            )
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, reject queued work.

        The batch currently executing (if any) completes and its waiters
        receive their results; items still queued are rejected with a
        typed :class:`~repro.errors.Unavailable`; subsequent
        :meth:`submit` calls are rejected the same way.
        """
        self._stopping = True
        while not self._queue.empty():
            entry = self._queue.get_nowait()
            if entry is _STOP:
                continue
            _item, future = entry
            self._reject(future)
        self._queue.put_nowait(_STOP)
        if self._task is not None:
            await self._task
            self._task = None

    def _reject(self, future: asyncio.Future) -> None:
        if not future.done():
            obs.inc("serve.rejected", batcher=self.name, code="unavailable")
            future.set_exception(
                errors.Unavailable(f"{self.name} batcher is shutting down")
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(self, item: Any) -> Any:
        """Enqueue one item and await its result."""
        if self._stopping or self._task is None:
            raise errors.Unavailable(
                f"{self.name} batcher is not accepting requests"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending += 1
        self._queue.put_nowait((item, future))
        obs.set_gauge("serve.queue_depth", self._queue.qsize(),
                      batcher=self.name)
        try:
            return await future
        finally:
            self._pending -= 1

    # ------------------------------------------------------------------
    # The consumer task
    # ------------------------------------------------------------------

    def _warm(self, gathered: int) -> bool:
        """Whether a timed top-up wait is worth the latency."""
        return self._last_batch_size > 1 or self._pending > gathered

    async def _gather(self) -> list | None:
        """Collect the next batch; None when the stop sentinel arrives."""
        entry = await self._queue.get()
        if entry is _STOP:
            return None
        loop = asyncio.get_running_loop()
        started = loop.time()
        batch = [entry]
        deadline = started + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = deadline - loop.time()
                if remaining <= 0 or not self._warm(len(batch)):
                    break
                try:
                    entry = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
            if entry is _STOP:
                # Re-post so the outer loop sees it after this batch.
                self._queue.put_nowait(_STOP)
                break
            batch.append(entry)
        obs.observe("serve.batch_gather_seconds", loop.time() - started,
                    batcher=self.name)
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._gather()
            if batch is None:
                return
            self._last_batch_size = len(batch)
            self.batches += 1
            self.items += len(batch)
            obs.observe("serve.batch_size", len(batch), batcher=self.name)
            items = [item for item, _ in batch]
            started = loop.time()
            try:
                results = await loop.run_in_executor(
                    None, self._batch_fn, items
                )
                if len(results) != len(items):
                    raise RuntimeError(
                        f"batch_fn returned {len(results)} results "
                        f"for {len(items)} items"
                    )
            except BaseException as exc:  # noqa: BLE001 -- fanned out below
                for _item, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            finally:
                obs.observe("serve.batch_exec_seconds",
                            loop.time() - started, batcher=self.name)
            for (_item, future), result in zip(batch, results):
                if future.done():
                    continue
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)
