"""Admission control and backpressure for the serving tier.

A server that accepts every request dies by queueing: past saturation,
latency grows without bound and every client times out.  The admission
controller bounds the work the process will hold at once and sheds the
rest *early*, with typed :mod:`repro.errors` rejections a client can
act on:

- :class:`~repro.errors.Overloaded` (503) once admitted-but-unfinished
  requests reach ``queue_depth`` -- the load-shedding bound covering
  both the batcher queues and in-flight batches;
- :class:`~repro.errors.RateLimited` (429) when one client exceeds its
  per-client budget.  The budget is a
  :class:`~repro.netsim.ratelimit.RateLimiter` -- the *same* slide-and-
  penalize semantics the simulated registrar servers enforce against
  our crawler in Section 4.1, now applied from the server's side of the
  counter;
- :class:`~repro.errors.Unavailable` (503) after :meth:`close`, i.e.
  during shutdown.

Admission is synchronous and cheap (a counter compare and a deque
trim), so it runs before any request is enqueued anywhere.
"""

from __future__ import annotations

import time

from repro import errors, obs
from repro.netsim.ratelimit import RateLimiter

__all__ = ["AdmissionController", "WallClock"]


class WallClock:
    """Monotonic wall time behind the ``now()`` protocol SimClock set.

    Lets the serving tier reuse the netsim :class:`RateLimiter`
    unchanged: the limiter only ever calls ``clock.now()``.
    """

    @staticmethod
    def now() -> float:
        """Monotonic seconds; the default serving clock."""
        return time.monotonic()


class AdmissionController:
    """Bound concurrent work and per-client request rates.

    Parameters
    ----------
    queue_depth:
        Maximum admitted-but-unfinished requests across the process.
    rate_limit / rate_window / rate_penalty:
        Per-client budget: at most ``rate_limit`` admissions per
        ``rate_window`` seconds, with a ``rate_penalty``-second lockout
        once tripped (``None`` disables per-client limiting).
    clock:
        Any ``now() -> float`` object; defaults to the wall clock.
        Tests pass a :class:`~repro.netsim.clock.SimClock` to step
        through penalty windows deterministically.
    """

    def __init__(
        self,
        *,
        queue_depth: int = 256,
        rate_limit: int | None = None,
        rate_window: float = 1.0,
        rate_penalty: float = 1.0,
        clock=None,
    ) -> None:
        """See the class docstring for the parameter semantics."""
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self._limiter = (
            RateLimiter(
                clock or WallClock(),
                limit=rate_limit,
                window=rate_window,
                penalty=rate_penalty,
            )
            if rate_limit is not None
            else None
        )
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self._closed = False

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; subsequent :meth:`admit` raises Unavailable."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; new requests are Unavailable."""
        return self._closed

    def _reject(self, exc: errors.ReproError) -> errors.ReproError:
        self.rejected += 1
        obs.inc("serve.rejected", code=exc.code)
        return exc

    def admit(self, client: str = "local") -> None:
        """Admit one request or raise a typed rejection.

        Every successful ``admit`` must be paired with a
        :meth:`release` (use ``try/finally``); the in-flight gauge is
        the difference.
        """
        if self._closed:
            raise self._reject(
                errors.Unavailable("server is shutting down")
            )
        if self.inflight >= self.queue_depth:
            raise self._reject(
                errors.Overloaded(
                    f"{self.inflight} requests in flight "
                    f"(queue depth {self.queue_depth})"
                )
            )
        if self._limiter is not None and not self._limiter.allow(client):
            raise self._reject(
                errors.RateLimited(f"client {client} over per-client limit")
            )
        self.inflight += 1
        self.admitted += 1
        obs.inc("serve.admitted")
        obs.set_gauge("serve.inflight", self.inflight)

    def release(self) -> None:
        """Mark one admitted request finished (success or failure)."""
        self.inflight -= 1
        obs.set_gauge("serve.inflight", self.inflight)
