"""Versioned parser snapshots with atomic hot-swap and rollback.

Section 5.3's maintainability story is a model that *keeps training*:
when a registrar ships a new format, a handful of labeled records and a
``partial_fit`` produce an adapted parser.  Online, that adapted model
has to roll out without dropping the traffic the old one is serving.
:class:`ModelRegistry` provides the mechanism:

- :meth:`publish` snapshots a :class:`~repro.parser.WhoisParser` as a
  numbered version (``v0001``, ``v0002``, ...), persisted under the
  registry root via ``WhoisParser.save`` when a root is configured;
- :meth:`activate` swaps which version is *current*.  The swap is one
  attribute assignment -- atomic under both the event loop and the
  executor threads running batches -- and the micro-batcher resolves
  the current parser at batch-execution time, so in-flight batches
  finish on the old model while the next batch picks up the new one.
  Zero requests are dropped by a swap (asserted under sustained load in
  ``benchmarks/bench_serving.py``);
- :meth:`rollback` re-activates the previously-active version, the
  escape hatch when a freshly adapted model misbehaves in production.

On disk a registry root holds one subdirectory per version plus an
``ACTIVE`` pointer file, so a restarted server resumes serving the same
version.  A plain ``repro train`` output directory (a bare
``WhoisParser.save``) is also accepted and wrapped as v0001; versions
published onto it afterwards (e.g. by ``repro maintain`` retraining in
place) persist as ``v000N`` subdirectories next to the bare files, so
the upgrade to a full registry is seamless.
"""

from __future__ import annotations

from pathlib import Path

from repro import errors, obs
from repro.parser.statistical import WhoisParser

__all__ = ["ModelRegistry"]

_ACTIVE_FILE = "ACTIVE"
_ENCODER_CACHE_FILE = "encoder_cache.json"


class ModelRegistry:
    """Versioned :class:`WhoisParser` snapshots, one of them active.

    With ``root=None`` the registry is purely in-memory (tests, demos);
    with a directory, every publish persists and activation survives
    restarts.

    Disk-backed versions load with ``mmap=True`` by default: weights are
    memory-mapped read-only from the raw ``.npy`` snapshots, so
    activating a new version is an mmap plus one pointer flip -- no
    decompression, no private copy -- and every worker process mapping
    the same snapshot shares one physical copy.  Superseded versions'
    cached parsers are evicted on activation (keeping only the active
    version and the rollback target), releasing their mappings instead
    of accumulating one per swap.

    Each version directory may also carry an ``encoder_cache.json``
    (written by :meth:`persist_encoder_cache`, e.g. at server shutdown):
    loading that version then warm-starts its line-encoder caches, so a
    restarted server hits on its first batch instead of re-encoding the
    WHOIS line distribution from scratch.
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        *,
        mmap: bool = True,
        domain: str | None = None,
    ) -> None:
        """In-memory registry; with ``root``, load and persist versions.

        ``domain`` pins the registry to one parsing domain: loading or
        publishing a snapshot trained for any other domain raises a
        typed :class:`~repro.errors.DomainMismatch` (unset, any snapshot
        is accepted -- the pre-plug-in behavior).
        """
        self.root = Path(root) if root is not None else None
        self.mmap = mmap
        self.domain = domain
        self._parsers: dict[str, WhoisParser] = {}
        self._versions: list[str] = []
        self._active: "tuple[str, WhoisParser] | None" = None
        self._history: list[str] = []  # activation order, for rollback
        if self.root is not None:
            self._scan()

    # ------------------------------------------------------------------
    # Disk layout
    # ------------------------------------------------------------------

    def _scan(self) -> None:
        """Adopt an existing on-disk registry (or bare model) if present."""
        if not self.root.exists():
            return
        bare = (self.root / "parser.json").exists()
        self._bare = bare
        self._versions = sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "parser.json").exists()
        )
        if bare:
            # A bare `repro train` model directory: wrap it as v0001,
            # loaded lazily on first activation.  Versions published
            # *onto* a bare directory (the maintenance loop retraining a
            # plain train output in place) live in v000N subdirectories
            # alongside it, so they are also adopted here.
            self._versions = ["v0001"] + [
                v for v in self._versions if v != "v0001"
            ]
        pointer = self.root / _ACTIVE_FILE
        if pointer.exists():
            version = pointer.read_text().strip()
            if version in self._versions:
                self.activate(version)
                return
        if self._versions:
            self.activate("v0001" if bare else self._versions[-1])

    def _version_path(self, version: str) -> Path:
        if getattr(self, "_bare", False) and version == "v0001":
            return self.root
        return self.root / version

    def _load(self, version: str) -> WhoisParser:
        parser = self._parsers.get(version)
        if parser is None:
            if self.root is None:
                raise KeyError(version)
            parser = WhoisParser.load(
                self._version_path(version),
                mmap=self.mmap,
                expect_domain=self.domain,
            )
            cache_file = self._version_path(version) / _ENCODER_CACHE_FILE
            if cache_file.exists():
                loaded = parser.load_encoder_cache(cache_file)
                if loaded:
                    obs.inc("serve.encoder_cache_warm_loads")
                    obs.set_gauge(
                        "serve.encoder_cache_warm_entries", loaded
                    )
            self._parsers[version] = parser
        return parser

    # ------------------------------------------------------------------
    # Publishing and activation
    # ------------------------------------------------------------------

    def versions(self) -> list[str]:
        """Every published version id, oldest first (a copy)."""
        return list(self._versions)

    def publish(
        self,
        parser: WhoisParser,
        *,
        activate: bool = True,
    ) -> str:
        """Snapshot ``parser`` as the next version; optionally activate."""
        if self.domain is not None and parser.spec.name != self.domain:
            raise errors.DomainMismatch(
                f"cannot publish a {parser.spec.name!r} parser into a "
                f"registry configured for domain {self.domain!r}"
            )
        next_number = 1 + max(
            (int(v[1:]) for v in self._versions if v[1:].isdigit()),
            default=0,
        )
        version = f"v{next_number:04d}"
        if self.root is not None:
            parser.save(self._version_path(version))
        self._parsers[version] = parser
        self._versions.append(version)
        obs.inc("serve.model_published")
        if activate or self._active is None:
            self.activate(version)
        return version

    def activate(self, version: str) -> None:
        """Make ``version`` current.  Atomic: one reference assignment."""
        if version not in self._versions:
            raise KeyError(f"unknown model version {version!r}")
        parser = self._load(version)
        self._active = (version, parser)
        self._history.append(version)
        self._evict_stale()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / _ACTIVE_FILE).write_text(version + "\n")
        obs.inc("serve.model_swaps")
        obs.set_gauge(
            "serve.model_version",
            int(version[1:]) if version[1:].isdigit() else -1,
        )

    def _evict_stale(self) -> None:
        """Drop cached parsers for versions that are neither active nor
        the rollback target.

        Only disk-backed registries evict (an in-memory registry cannot
        reload what it drops).  In-flight batches holding the outgoing
        parser finish safely -- eviction only releases *this* cache's
        reference; the old mapping is unmapped when the last batch
        drops its reference, which is what keeps repeated hot-swaps
        from accumulating one mmap per superseded version.
        """
        if self.root is None:
            return
        keep = set(self._history[-2:])
        for version in [v for v in self._parsers if v not in keep]:
            del self._parsers[version]

    def persist_encoder_cache(self) -> int:
        """Write the active parser's warm line-encoder caches to disk.

        The snapshot lands as ``encoder_cache.json`` inside the active
        version's directory, fingerprinted against the vocabularies (see
        :meth:`WhoisParser.save_encoder_cache
        <repro.parser.statistical.WhoisParser.save_encoder_cache>`);
        the next load of that version starts warm.  Returns the number
        of line profiles written (0 for in-memory registries).
        """
        if self.root is None or self._active is None:
            return 0
        version, parser = self._active
        return parser.save_encoder_cache(
            self._version_path(version) / _ENCODER_CACHE_FILE
        )

    def rollback(self) -> str:
        """Re-activate the previously-active version and return it."""
        if len(self._history) < 2:
            raise errors.Unavailable("no earlier model version to roll back to")
        previous = self._history[-2]
        # Collapse the history so repeated rollbacks keep walking back.
        self._history = self._history[:-2]
        self.activate(previous)
        return previous

    # ------------------------------------------------------------------
    # The serving-side view
    # ------------------------------------------------------------------

    @property
    def has_active(self) -> bool:
        """True when some version has been activated."""
        return self._active is not None

    def current(self) -> tuple[str, WhoisParser]:
        """The active ``(version, parser)`` pair.

        Raises :class:`~repro.errors.Unavailable` when nothing has been
        published -- the server's ``/readyz`` maps this to 503.
        """
        active = self._active
        if active is None:
            raise errors.Unavailable("no model version published")
        return active

    @property
    def current_version(self) -> str:
        """Version id of the active parser (Unavailable if none)."""
        return self.current()[0]

    @property
    def current_parser(self) -> WhoisParser:
        """The active parser itself (Unavailable if none)."""
        return self.current()[1]
