"""Online serving: micro-batching, admission control, model hot-swap.

The north-star system serves "heavy traffic from millions of users";
this package is its front door.  One :class:`ServeApp` process exposes
the trained parser and the RDAP gateway over two wire faces -- RFC 3912
on port 43 and a minimal HTTP API (``/parse``, ``/rdap/domain/<name>``,
``/healthz``, ``/readyz``, ``/metrics``) -- with three serving-tier
mechanisms underneath:

- :class:`MicroBatcher` coalesces concurrent single requests into
  ``parse_many`` batches, converting PR 1's offline batched-Viterbi win
  into online tail-latency wins (``benchmarks/bench_serving.py``);
- :class:`AdmissionController` bounds in-flight work and per-client
  rates, shedding load with typed :mod:`repro.errors` rejections;
- :class:`ModelRegistry` versions parser snapshots and hot-swaps the
  active one atomically behind the batcher, with rollback.

>>> import asyncio
>>> from repro.datagen import CorpusGenerator
>>> from repro.serve import ModelRegistry, ServeApp
>>> corpus = CorpusGenerator(seed=0).labeled_corpus(50)
>>> from repro.parser import WhoisParser
>>> models = ModelRegistry()
>>> _ = models.publish(WhoisParser().fit(corpus))
>>> async def demo():
...     app = await ServeApp(models).start()
...     try:
...         parsed = await app.parse_text(corpus[0].text)
...     finally:
...         await app.stop()
...     return parsed.domain == corpus[0].domain
>>> asyncio.run(demo())
True
"""

from repro.serve.admission import AdmissionController, WallClock
from repro.serve.app import ServeApp, ServeConfig, render_parsed_whois
from repro.serve.batcher import MicroBatcher
from repro.serve.http import HttpFrontend
from repro.serve.loadgen import LatencyReport, report_header, run_load
from repro.serve.models import ModelRegistry

__all__ = [
    "AdmissionController",
    "HttpFrontend",
    "LatencyReport",
    "MicroBatcher",
    "ModelRegistry",
    "ServeApp",
    "ServeConfig",
    "WallClock",
    "render_parsed_whois",
    "report_header",
    "run_load",
]
