"""Lifting WHOIS data into RDAP objects (and lowering them back).

Three paths:

- :func:`registration_to_rdap` converts ground-truth registrations (what a
  thick registry's provisioning database would serve natively);
- :func:`parsed_to_rdap` converts the statistical parser's output --
  together with the parser this is a WHOIS→RDAP gateway, the migration
  path the IETF WEIRDS drafts envisioned;
- :func:`rdap_from_json` is the inverse of ``RdapDomain.to_json``: it
  revives a wire payload (jCards unpacked) so the consistency auditor
  can compare an RDAP response field-by-field against a WHOIS parse.
"""

from __future__ import annotations

from datetime import date

from repro.datagen.registration import Registration
from repro.parser.fields import ParsedRecord
from repro.rdap.schema import RdapDomain, RdapEntity, RdapEvent


def registration_to_rdap(registration: Registration) -> RdapDomain:
    """Ground-truth RDAP object for one synthetic registration (oracle path)."""
    contact = registration.registrant
    entities = [
        RdapEntity(
            role="registrant",
            full_name=contact.name,
            organization=contact.org,
            street=contact.street,
            city=contact.city,
            region=contact.state,
            postal_code=contact.postcode,
            country=contact.country_code if contact.country_code != "??" else None,
            phone=contact.phone,
            email=contact.email,
            handle=contact.handle,
        ),
        RdapEntity(
            role="registrar",
            full_name=registration.registrar_name,
            handle=str(registration.registrar_iana_id),
        ),
        RdapEntity(role="administrative", full_name=registration.admin.name,
                   email=registration.admin.email,
                   handle=registration.admin.handle),
        RdapEntity(role="technical", full_name=registration.tech.name,
                   email=registration.tech.email,
                   handle=registration.tech.handle),
    ]
    if registration.billing is not None:
        entities.append(
            RdapEntity(role="billing", full_name=registration.billing.name,
                       email=registration.billing.email,
                       handle=registration.billing.handle)
        )
    return RdapDomain(
        ldh_name=registration.domain,
        statuses=list(registration.statuses),
        events=[
            RdapEvent("registration", registration.created),
            RdapEvent("last changed", registration.updated),
            RdapEvent("expiration", registration.expires),
        ],
        nameservers=list(registration.name_servers),
        entities=entities,
        secure_dns=registration.dnssec != "unsigned",
    )


def parsed_to_rdap(domain: str, parsed: ParsedRecord) -> RdapDomain:
    """Convert parser output to RDAP; omits whatever the parse lacks."""
    registrant = parsed.registrant
    entities = []
    if registrant:
        entities.append(
            RdapEntity(
                role="registrant",
                full_name=registrant.get("name"),
                organization=registrant.get("org"),
                street=registrant.get("street"),
                city=registrant.get("city"),
                region=registrant.get("state"),
                postal_code=registrant.get("postcode"),
                country=registrant.get("country"),
                phone=registrant.get("phone"),
                email=registrant.get("email"),
                handle=registrant.get("id"),
            )
        )
    if parsed.registrar:
        entities.append(
            RdapEntity(role="registrar", full_name=parsed.registrar)
        )
    events = []
    if parsed.created:
        events.append(RdapEvent("registration", parsed.created))
    if parsed.updated:
        events.append(RdapEvent("last changed", parsed.updated))
    if parsed.expires:
        events.append(RdapEvent("expiration", parsed.expires))
    return RdapDomain(
        ldh_name=(parsed.domain or domain).lower(),
        statuses=list(parsed.statuses),
        events=events,
        nameservers=list(parsed.name_servers),
        entities=entities,
    )


def _entity_from_json(payload: dict) -> RdapEntity:
    """Unpack one RDAP entity object, jCard (RFC 7095) included."""
    fields: dict[str, str | None] = {
        "full_name": None, "organization": None, "street": None,
        "city": None, "region": None, "postal_code": None, "country": None,
        "phone": None, "email": None,
    }
    vcard = payload.get("vcardArray") or ["vcard", []]
    for item in vcard[1]:
        kind, _params, _type, value = item[0], item[1], item[2], item[3]
        if kind == "fn":
            fields["full_name"] = value
        elif kind == "org":
            fields["organization"] = value
        elif kind == "adr" and isinstance(value, list):
            # jCard adr: [pobox, ext, street, locality, region, code, country]
            padded = list(value) + [""] * (7 - len(value))
            fields["street"] = padded[2] or None
            fields["city"] = padded[3] or None
            fields["region"] = padded[4] or None
            fields["postal_code"] = padded[5] or None
            fields["country"] = padded[6] or None
        elif kind == "tel":
            fields["phone"] = value.removeprefix("tel:")
        elif kind == "email":
            fields["email"] = value
    roles = payload.get("roles") or ["registrant"]
    return RdapEntity(role=roles[0], handle=payload.get("handle"), **fields)


def rdap_from_json(payload: dict) -> RdapDomain:
    """Revive an RDAP domain payload into an :class:`RdapDomain`.

    The inverse of :meth:`RdapDomain.to_json`, lossless over the subset
    this codebase emits; unknown members are ignored, so payloads from a
    real RDAP server (which carry links, notices, ...) also revive.
    """
    events = [
        RdapEvent(
            action=event["eventAction"],
            date=date.fromisoformat(event["eventDate"][:10]),
        )
        for event in payload.get("events", [])
    ]
    return RdapDomain(
        ldh_name=payload.get("ldhName", ""),
        handle=payload.get("handle"),
        statuses=list(payload.get("status", [])),
        events=events,
        nameservers=[
            server.get("ldhName", "")
            for server in payload.get("nameservers", [])
            if server.get("ldhName")
        ],
        entities=[
            _entity_from_json(entity)
            for entity in payload.get("entities", [])
        ],
        secure_dns=bool(
            (payload.get("secureDNS") or {}).get("delegationSigned")
        ),
    )
