"""A pragmatic subset of the RDAP domain object model (RFC 7483).

RDAP responses are JSON with a fixed schema: a domain object carries
``ldhName``, ``status``, ``events`` (registration/expiration/last changed),
``nameservers``, and ``entities`` whose contact details are jCard arrays.
We model the subset needed to represent everything a thick WHOIS record
can say, plus a validator that enforces the structural rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

RDAP_CONFORMANCE = ["rdap_level_0"]

#: RFC 7483 event actions we emit
EVENT_ACTIONS = ("registration", "expiration", "last changed")

#: RFC 7483 entity roles we emit
ENTITY_ROLES = ("registrant", "administrative", "technical", "billing",
                "registrar")


@dataclass(frozen=True)
class RdapEvent:
    """One RFC 7483 event: an action (registration, expiration) and when."""

    action: str
    date: date

    def to_json(self) -> dict:
        """The RFC 7483 ``events`` array element."""
        return {"eventAction": self.action,
                "eventDate": self.date.isoformat()}


@dataclass(frozen=True)
class RdapEntity:
    """An RDAP entity with a minimal jCard."""

    role: str
    full_name: str | None = None
    organization: str | None = None
    street: str | None = None
    city: str | None = None
    region: str | None = None
    postal_code: str | None = None
    country: str | None = None
    phone: str | None = None
    email: str | None = None
    handle: str | None = None

    def to_json(self) -> dict:
        """The RFC 7483 entity object with its jCard (RFC 7095) payload."""
        vcard: list[list] = [["version", {}, "text", "4.0"]]
        if self.full_name:
            vcard.append(["fn", {}, "text", self.full_name])
        if self.organization:
            vcard.append(["org", {}, "text", self.organization])
        address = [self.street or "", self.city or "", self.region or "",
                   self.postal_code or "", self.country or ""]
        if any(address):
            # jCard adr: [pobox, ext, street, locality, region, code, country]
            vcard.append(["adr", {}, "text",
                          ["", "", address[0], address[1], address[2],
                           address[3], address[4]]])
        if self.phone:
            vcard.append(["tel", {"type": "voice"}, "uri",
                          f"tel:{self.phone}"])
        if self.email:
            vcard.append(["email", {}, "text", self.email])
        payload: dict = {
            "objectClassName": "entity",
            "roles": [self.role],
            "vcardArray": ["vcard", vcard],
        }
        if self.handle:
            payload["handle"] = self.handle
        return payload


@dataclass
class RdapDomain:
    """The RFC 7483 domain object a lookup returns (validated subset)."""

    ldh_name: str
    handle: str | None = None
    statuses: list[str] = field(default_factory=list)
    events: list[RdapEvent] = field(default_factory=list)
    nameservers: list[str] = field(default_factory=list)
    entities: list[RdapEntity] = field(default_factory=list)
    secure_dns: bool = False

    def to_json(self) -> dict:
        """The full RDAP response body for this domain."""
        return {
            "rdapConformance": list(RDAP_CONFORMANCE),
            "objectClassName": "domain",
            "ldhName": self.ldh_name,
            **({"handle": self.handle} if self.handle else {}),
            "status": list(self.statuses),
            "events": [event.to_json() for event in self.events],
            "nameservers": [
                {"objectClassName": "nameserver", "ldhName": ns}
                for ns in self.nameservers
            ],
            "entities": [entity.to_json() for entity in self.entities],
            "secureDNS": {"delegationSigned": self.secure_dns},
        }


class RdapValidationError(ValueError):
    """The JSON object violates the RDAP structural rules we enforce."""


def validate_rdap(payload: dict) -> None:
    """Structural validation of an RDAP domain response."""
    if payload.get("objectClassName") != "domain":
        raise RdapValidationError("objectClassName must be 'domain'")
    if "rdap_level_0" not in payload.get("rdapConformance", []):
        raise RdapValidationError("missing rdap_level_0 conformance")
    name = payload.get("ldhName", "")
    if not name or any(ord(ch) > 127 for ch in name):
        raise RdapValidationError("ldhName must be non-empty ASCII")
    for event in payload.get("events", []):
        if event.get("eventAction") not in EVENT_ACTIONS:
            raise RdapValidationError(
                f"unknown eventAction {event.get('eventAction')!r}"
            )
        date.fromisoformat(event.get("eventDate", ""))  # raises if invalid
    for server in payload.get("nameservers", []):
        if server.get("objectClassName") != "nameserver":
            raise RdapValidationError("nameserver objectClassName wrong")
    for entity in payload.get("entities", []):
        if entity.get("objectClassName") != "entity":
            raise RdapValidationError("entity objectClassName wrong")
        roles = entity.get("roles", [])
        if not roles or any(role not in ENTITY_ROLES for role in roles):
            raise RdapValidationError(f"bad entity roles {roles!r}")
        vcard = entity.get("vcardArray")
        if (
            not isinstance(vcard, list)
            or len(vcard) != 2
            or vcard[0] != "vcard"
            or not any(item[0] == "version" for item in vcard[1])
        ):
            raise RdapValidationError("malformed vcardArray")
