"""RDAP: the structured replacement for WHOIS (Section 2.2's endgame).

The paper closes its background with the "well-received proposals to
completely scrap the WHOIS system altogether for a protocol with a
well-defined structured data schema" — the IETF WEIRDS effort that became
RDAP (RFC 7483).  This package implements that endgame on top of the
parser: :mod:`repro.rdap.schema` models RDAP domain objects,
:mod:`repro.rdap.convert` lifts parsed WHOIS records into them, and
:mod:`repro.rdap.server` serves RDAP JSON lookups — turning the statistical
parser into a WHOIS→RDAP gateway.
"""

from repro.rdap.convert import (
    parsed_to_rdap,
    rdap_from_json,
    registration_to_rdap,
)
from repro.rdap.schema import (
    RdapDomain,
    RdapEntity,
    RdapEvent,
    validate_rdap,
)
from repro.rdap.server import RdapGateway

__all__ = [
    "RdapDomain",
    "RdapEntity",
    "RdapEvent",
    "RdapGateway",
    "parsed_to_rdap",
    "rdap_from_json",
    "registration_to_rdap",
    "validate_rdap",
]
