"""An RDAP gateway over legacy WHOIS.

:class:`RdapGateway` holds the trained statistical parser and a source of
raw thick records (a crawl result set or a live query function); lookups
return validated RDAP JSON.  This is the concrete payoff of learning to
parse WHOIS: structured, schema-stable answers over the unstructured
legacy corpus, without waiting for registries to migrate.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.parser.statistical import WhoisParser
from repro.rdap.convert import parsed_to_rdap
from repro.rdap.schema import validate_rdap


class DomainNotFound(KeyError):
    """No WHOIS record available for this domain."""


class RdapGateway:
    """domain -> validated RDAP JSON, via the statistical parser."""

    def __init__(
        self,
        parser: WhoisParser,
        fetch_whois: Callable[[str], "str | None"],
    ) -> None:
        self.parser = parser
        self._fetch = fetch_whois
        self.lookups = 0

    def lookup(self, domain: str) -> dict:
        """RDAP domain object for ``domain``; raises DomainNotFound."""
        self.lookups += 1
        text = self._fetch(domain.lower())
        if text is None:
            raise DomainNotFound(domain)
        parsed = self.parser.parse(text)
        payload = parsed_to_rdap(domain, parsed).to_json()
        validate_rdap(payload)
        return payload

    def lookup_json(self, domain: str) -> str:
        return json.dumps(self.lookup(domain), indent=2)

    def error_json(self, domain: str, status: int = 404) -> str:
        """An RFC 7483 error response body."""
        return json.dumps({
            "rdapConformance": ["rdap_level_0"],
            "errorCode": status,
            "title": "Not Found",
            "description": [f"no WHOIS record for {domain}"],
        })
