"""An RDAP gateway over legacy WHOIS.

:class:`RdapGateway` holds a trained parser (anything satisfying the
:class:`~repro.parser.api.Parser` protocol) and a source of raw thick
records (a crawl result set or a live query function); lookups return
validated RDAP JSON.  This is the concrete payoff of learning to parse
WHOIS: structured, schema-stable answers over the unstructured legacy
corpus, without waiting for registries to migrate.

The gateway is the serving tier of the production story, so it carries
the serving-tier conveniences: a bounded LRU response cache (WHOIS
records change on the order of days; gateway traffic repeats heavily),
a bulk :meth:`lookup_many` that rides the parser's batched path, and
``repro.obs`` instrumentation (lookup counts, latencies, cache hit
rates, error codes).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.errors import DomainNotFound, ReproError, error_payload
from repro.rdap.convert import parsed_to_rdap
from repro.rdap.schema import validate_rdap

if TYPE_CHECKING:
    from repro.parser.api import Parser

__all__ = ["DomainNotFound", "RdapGateway"]

_STATUS_PHRASES = {
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _status_for(exc: BaseException | None) -> int:
    """HTTP status for an exception, through the shared taxonomy.

    :class:`~repro.errors.ReproError` subclasses -- crawl failures,
    quarantine reasons, DomainNotFound -- carry their own status;
    anything foreign is a 500.  No exception means "no record" (404).
    """
    if exc is None:
        return 404
    if isinstance(exc, ReproError):
        return exc.http_status
    return 500


class RdapGateway:
    """domain -> validated RDAP JSON, via a WHOIS parser.

    ``cache_size`` > 0 enables a bounded LRU cache of validated
    responses, keyed by lowercased domain; 0 (the default) disables
    caching entirely, so every lookup re-fetches and re-parses.
    """

    def __init__(
        self,
        parser: "Parser",
        fetch_whois: Callable[[str], "str | None"],
        *,
        cache_size: int = 0,
    ) -> None:
        """Gateway over ``parser`` and a ``fetch_whois`` source; LRU-cached
        responses when ``cache_size`` > 0."""
        self.parser = parser
        self._fetch = fetch_whois
        self.lookups = 0
        self.cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: "OrderedDict[str, dict]" = OrderedDict()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _cache_get(self, key: str) -> "dict | None":
        if not self.cache_size:
            return None
        payload = self._cache.get(key)
        if payload is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            obs.inc("rdap.cache.hits")
        else:
            self.cache_misses += 1
            obs.inc("rdap.cache.misses")
        return payload

    def _cache_put(self, key: str, payload: dict) -> None:
        if not self.cache_size:
            return
        self._cache[key] = payload
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached response.

        The serving tier calls this when the parser behind the gateway is
        hot-swapped: cached payloads were rendered by the *old* model and
        would otherwise outlive it.
        """
        self._cache.clear()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def _build(self, domain: str, text: str) -> dict:
        """Parse one thick record and validate the RDAP rendering."""
        parsed = self.parser.parse(text)
        payload = parsed_to_rdap(domain, parsed).to_json()
        validate_rdap(payload)
        return payload

    def lookup(self, domain: str) -> dict:
        """RDAP domain object for ``domain``; raises DomainNotFound."""
        self.lookups += 1
        obs.inc("rdap.lookups")
        key = domain.lower()
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        start = perf_counter()
        try:
            text = self._fetch(key)
            if text is None:
                raise DomainNotFound(domain)
            payload = self._build(domain, text)
        except Exception as exc:
            obs.inc("rdap.errors", code=str(_status_for(exc)))
            raise
        obs.observe("rdap.lookup_seconds", perf_counter() - start)
        self._cache_put(key, payload)
        return payload

    def lookup_many(self, domains: Sequence[str], *, jobs: int = 1) -> list[dict]:
        """Bulk :meth:`lookup`, parsed on the parser's batched path.

        Returns exactly ``[self.lookup(d) for d in domains]`` -- same
        payloads in the same order, cache consulted and filled the same
        way, and :class:`DomainNotFound` raised for the first domain (in
        input order) without a record -- but every uncached record goes
        through one ``parse_many`` call, sharded over ``jobs`` worker
        processes when the parser supports it.
        """
        domains = list(domains)
        self.lookups += len(domains)
        obs.inc("rdap.lookups", len(domains))
        payloads: list[dict | None] = [None] * len(domains)
        #: uncached key -> indices awaiting its payload, in input order.
        #: Duplicates of an uncached domain are parsed once and fanned
        #: out, exactly as a lookup() loop would hit the cache on the
        #: second occurrence.
        pending: "OrderedDict[str, list[int]]" = OrderedDict()
        for i, domain in enumerate(domains):
            key = domain.lower()
            if key in pending:
                pending[key].append(i)
                continue
            cached = self._cache_get(key)
            if cached is not None:
                payloads[i] = cached
            else:
                pending[key] = [i]
        texts: list[str] = []
        for key, indices in pending.items():
            text = self._fetch(key)
            if text is None:
                obs.inc("rdap.errors", code="404")
                raise DomainNotFound(domains[indices[0]])
            texts.append(text)
        if texts:
            start = perf_counter()
            parsed_records = self.parser.parse_many(texts, jobs=jobs)
            for (key, indices), parsed in zip(pending.items(), parsed_records):
                domain = domains[indices[0]]
                try:
                    payload = parsed_to_rdap(domain, parsed).to_json()
                    validate_rdap(payload)
                except Exception as exc:
                    obs.inc("rdap.errors", code=str(_status_for(exc)))
                    raise
                self._cache_put(key, payload)
                for i in indices:
                    payloads[i] = payload
            obs.observe("rdap.lookup_many_seconds", perf_counter() - start)
        return payloads

    def try_lookup_many(
        self, domains: Sequence[str], *, jobs: int = 1
    ) -> "list[dict | ReproError]":
        """Per-domain :meth:`lookup` results that never raise.

        Each slot holds either the validated RDAP payload or the typed
        :class:`~repro.errors.ReproError` that lookup would have raised
        for that domain (:class:`DomainNotFound` for missing records; a
        render/validation crash becomes a generic 500-shaped
        :class:`~repro.errors.ReproError`).  One bad domain therefore
        cannot sink the rest of the batch -- the contract the serving
        tier's micro-batcher fans results out under.  Uncached records
        still parse in a single ``parse_many`` call.
        """
        domains = list(domains)
        self.lookups += len(domains)
        obs.inc("rdap.lookups", len(domains))
        results: "list[dict | ReproError | None]" = [None] * len(domains)
        pending: "OrderedDict[str, list[int]]" = OrderedDict()
        for i, domain in enumerate(domains):
            key = domain.lower()
            if key in pending:
                pending[key].append(i)
                continue
            cached = self._cache_get(key)
            if cached is not None:
                results[i] = cached
            else:
                pending[key] = [i]
        texts: dict[str, str] = {}
        for key, indices in pending.items():
            text = self._fetch(key)
            if text is None:
                obs.inc("rdap.errors", code="404")
                error = DomainNotFound(domains[indices[0]])
                for i in indices:
                    results[i] = error
            else:
                texts[key] = text
        if texts:
            start = perf_counter()
            parsed_records = self.parser.parse_many(
                list(texts.values()), jobs=jobs
            )
            for key, parsed in zip(texts, parsed_records):
                indices = pending[key]
                domain = domains[indices[0]]
                try:
                    payload = parsed_to_rdap(domain, parsed).to_json()
                    validate_rdap(payload)
                except Exception as exc:
                    obs.inc("rdap.errors", code=str(_status_for(exc)))
                    error = (
                        exc if isinstance(exc, ReproError)
                        else ReproError(f"{type(exc).__name__}: {exc}")
                    )
                    for i in indices:
                        results[i] = error
                    continue
                self._cache_put(key, payload)
                for i in indices:
                    results[i] = payload
            obs.observe("rdap.lookup_many_seconds", perf_counter() - start)
        return results

    # ------------------------------------------------------------------
    # HTTP-shaped responses
    # ------------------------------------------------------------------

    def lookup_json(self, domain: str) -> str:
        """:meth:`lookup` serialized as indented JSON (the wire body)."""
        return json.dumps(self.lookup(domain), indent=2)

    def error_json(
        self,
        domain: str,
        status: int | None = None,
        *,
        exc: BaseException | None = None,
    ) -> str:
        """An RFC 7483 error response body.

        Errors serialize through the shared :mod:`repro.errors`
        taxonomy: any :class:`~repro.errors.ReproError` -- a
        :class:`DomainNotFound`, but equally a typed
        :class:`~repro.errors.CrawlError` bubbling up from a live fetch
        -- supplies its own HTTP-analog status and taxonomy code (echoed
        in the body's ``reproErrorCode``); foreign exceptions (a parse
        crash, a validation failure) render the 500 shape with the
        exception's message.  An explicit ``status`` overrides the
        derived code.
        """
        if status is None:
            status = _status_for(exc)
        title = _STATUS_PHRASES.get(status, type(exc).__name__ if exc else "Error")
        if exc is None or isinstance(exc, DomainNotFound):
            description = f"no WHOIS record for {domain}"
        elif isinstance(exc, ReproError):
            description = str(exc)
        else:
            description = f"{type(exc).__name__}: {exc}"
        body = {
            "rdapConformance": ["rdap_level_0"],
            "errorCode": status,
            "title": title,
            "description": [description],
        }
        if exc is not None:
            body["reproErrorCode"] = error_payload(exc)["code"]
        return json.dumps(body)
